package ranging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/radio"
	"repro/internal/units"
	"repro/internal/xrand"
)

func paperEstimator() *Estimator {
	return NewEstimator(radio.PaperDualSlope(), 23)
}

func TestEstimateDistanceExactInversion(t *testing.T) {
	e := paperEstimator()
	model := radio.PaperDualSlope()
	for _, d := range []float64{1.5, 3, 5, 6, 10, 25, 50, 88} {
		rx := units.DBm(23).Sub(model.Loss(units.Metre(d)))
		got := float64(e.EstimateDistance(rx, 1000))
		if math.Abs(got-d) > 0.01 {
			t.Errorf("EstimateDistance at true d=%v: got %v", d, got)
		}
	}
}

func TestEstimateDistanceClamps(t *testing.T) {
	e := paperEstimator()
	// Impossibly strong signal clamps to 1 m.
	if got := e.EstimateDistance(23, 1000); got != 1 {
		t.Errorf("strong signal estimate = %v, want 1", got)
	}
	// Impossibly weak signal clamps to maxRange.
	if got := e.EstimateDistance(-300, 500); got != 500 {
		t.Errorf("weak signal estimate = %v, want 500", got)
	}
}

func TestInversionRoundTripProperty(t *testing.T) {
	e := NewEstimator(radio.OutdoorLogDistance(), 23)
	model := radio.OutdoorLogDistance()
	f := func(raw float64) bool {
		d := 1 + math.Abs(math.Mod(raw, 400))
		rx := units.DBm(23).Sub(model.Loss(units.Metre(d)))
		got := float64(e.EstimateDistance(rx, 1000))
		return math.Abs(got-d) < 0.01+0.001*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateFromSamplesReducesError(t *testing.T) {
	streams := xrand.NewStreams(1)
	model := radio.PaperDualSlope()
	ch := radio.NewChannel(model, 10, radio.FadingNone, streams)
	e := paperEstimator()
	trueD := units.Metre(30)

	errOf := func(k int) float64 {
		const trials = 400
		var sum float64
		for tr := 0; tr < trials; tr++ {
			rx := make([]units.DBm, k)
			for i := range rx {
				rx[i] = ch.Sample(23, trueD)
			}
			est, n := e.EstimateFromSamples(rx, 1000)
			if n != k {
				t.Fatalf("sample count %d != %d", n, k)
			}
			sum += math.Abs(RelativeError(est, trueD))
		}
		return sum / trials
	}
	e1 := errOf(1)
	e16 := errOf(16)
	if e16 >= e1 {
		t.Errorf("16-sample error %v should beat 1-sample error %v", e16, e1)
	}
}

func TestEstimateFromSamplesEmpty(t *testing.T) {
	e := paperEstimator()
	d, n := e.EstimateFromSamples(nil, 250)
	if d != 250 || n != 0 {
		t.Errorf("empty estimate = (%v,%v), want (250,0)", d, n)
	}
}

func TestEstimateMedian(t *testing.T) {
	e := paperEstimator()
	model := radio.PaperDualSlope()
	rxAt := func(d float64) units.DBm { return units.DBm(23).Sub(model.Loss(units.Metre(d))) }
	// Two good samples around 20 m and one deep fade outlier.
	samples := []units.DBm{rxAt(20), rxAt(21), rxAt(500)}
	est, err := e.EstimateMedian(samples, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est); got < 19 || got > 22 {
		t.Errorf("median estimate %v should be robust to the outlier", got)
	}
	if _, err := e.EstimateMedian(nil, 100); err == nil {
		t.Error("empty median should error")
	}
	// Even count takes the midpoint.
	est2, _ := e.EstimateMedian([]units.DBm{rxAt(10), rxAt(20)}, 1000)
	if float64(est2) <= 10 || float64(est2) >= 20 {
		t.Errorf("even-count median estimate %v should be between the two", est2)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(15, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelativeError(15,10) = %v, want 0.5", got)
	}
	if got := RelativeError(5, 10); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("RelativeError(5,10) = %v, want -0.5", got)
	}
	if got := RelativeError(10, 0); got != 0 {
		t.Errorf("zero actual distance should yield 0, got %v", got)
	}
}

func TestRelativeErrorLowerBoundProperty(t *testing.T) {
	// eq. (6): ε ∈ [−1, +∞).
	f := func(m, a float64) bool {
		m = math.Abs(math.Mod(m, 1e6))
		a = 0.001 + math.Abs(math.Mod(a, 1e6))
		return RelativeError(units.Metre(m), units.Metre(a)) >= -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrorFromShadowingMatchesEq12(t *testing.T) {
	// x = 0 → no error.
	if got := ErrorFromShadowing(0, 4); got != 0 {
		t.Errorf("zero shadowing error = %v", got)
	}
	// x = 10n dB → factor 10 → ε = 9.
	if got := ErrorFromShadowing(40, 4); math.Abs(got-9) > 1e-9 {
		t.Errorf("ErrorFromShadowing(40,4) = %v, want 9", got)
	}
	// Negative x shrinks the estimate: ε ∈ (−1, 0).
	if got := ErrorFromShadowing(-40, 4); math.Abs(got+0.9) > 1e-9 {
		t.Errorf("ErrorFromShadowing(-40,4) = %v, want -0.9", got)
	}
}

func TestMeasuredDistanceMatchesEq11(t *testing.T) {
	// r_u = r·10^{x/10n}: with x=10, n=4 → factor 10^0.25.
	got := float64(MeasuredDistance(100, 10, 4))
	want := 100 * math.Pow(10, 0.25)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MeasuredDistance = %v, want %v", got, want)
	}
}

func TestEq11Eq12Consistency(t *testing.T) {
	// ε computed from eq. 12 must equal RelativeError of eq. 11's output.
	f := func(xRaw, dRaw float64) bool {
		x := math.Mod(xRaw, 30)
		d := 1 + math.Abs(math.Mod(dRaw, 500))
		eps := ErrorFromShadowing(x, 4)
		ru := MeasuredDistance(units.Metre(d), x, 4)
		return math.Abs(RelativeError(ru, units.Metre(d))-eps) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedAbsRelativeError(t *testing.T) {
	if got := ExpectedAbsRelativeError(0, 4); got != 0 {
		t.Errorf("zero sigma error = %v", got)
	}
	// Monte-Carlo cross-check at sigma=10 dB, n=4.
	s := xrand.NewStream(9)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(ErrorFromShadowing(s.LogNormalDB(10), 4))
	}
	mc := sum / n
	analytic := ExpectedAbsRelativeError(10, 4)
	if math.Abs(mc-analytic) > 0.01 {
		t.Errorf("analytic E|ε| = %v vs Monte-Carlo %v", analytic, mc)
	}
	// Higher exponent → smaller ranging error (the paper's reason for
	// preferring outdoor n=4 geometry inference).
	if ExpectedAbsRelativeError(10, 2) <= ExpectedAbsRelativeError(10, 4) {
		t.Error("error should shrink as the path-loss exponent grows")
	}
}
