package ranging_test

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/ranging"
)

func pt(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

// ExampleEstimator_EstimateDistance inverts the Table I path-loss model: a
// PS transmitted at 23 dBm and received at -97 dBm has seen 120 dB of path
// loss, which the far branch (40 + 40·log10 d) places at 100 m.
func ExampleEstimator_EstimateDistance() {
	est := ranging.NewEstimator(radio.PaperDualSlope(), 23)
	d := est.EstimateDistance(-97, 1000)
	fmt.Printf("%.1f m\n", float64(d))
	// Output: 100.0 m
}

// ExampleErrorFromShadowing evaluates eq. (12): a +10 dB shadowing draw
// under path-loss exponent 4 inflates the distance estimate by 78%.
func ExampleErrorFromShadowing() {
	eps := ranging.ErrorFromShadowing(10, 4)
	fmt.Printf("%.0f%%\n", 100*eps)
	// Output: 78%
}

// ExampleMultilaterate fixes a position from three perfect ranges to the
// true point (3, 4).
func ExampleMultilaterate() {
	obs := []ranging.Observation{
		{Anchor: pt(0, 0), Distance: 5},
		{Anchor: pt(10, 0), Distance: 8.0622577},
		{Anchor: pt(0, 10), Distance: 6.7082039},
	}
	fix, _, err := ranging.Multilaterate(obs, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("(%.1f, %.1f)\n", fix.X, fix.Y)
	// Output: (3.0, 4.0)
}
