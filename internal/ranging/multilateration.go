package ranging

import (
	"errors"
	"math"

	"repro/internal/geo"
)

// Bias handling and multilateration on top of the eq. (11) error model.
//
// Under log-normal shadowing the naive inversion r̂ = r·10^{x/(10n)} is
// biased: with s = σ·ln10/(10n), E[r̂] = r·e^{s²/2} > r. The
// bias-corrected estimate divides that factor back out — a closed-form
// consequence of eq. (12) the paper does not spell out but the RSSI
// literature (Rappaport [21]) does.

// LogShadowScale returns s = σ·ln10/(10n), the standard deviation of
// ln(r̂/r) under shadowing σ (dB) and path-loss exponent n.
func LogShadowScale(sigmaDB, n float64) float64 {
	return sigmaDB * math.Ln10 / (10 * n)
}

// BiasFactor returns E[r̂]/r = e^{s²/2} for the given shadowing and
// exponent: how much the raw RSSI distance estimate overshoots on average.
func BiasFactor(sigmaDB, n float64) float64 {
	s := LogShadowScale(sigmaDB, n)
	return math.Exp(s * s / 2)
}

// CorrectBias removes the log-normal bias from a raw distance estimate.
func CorrectBias(raw float64, sigmaDB, n float64) float64 {
	return raw / BiasFactor(sigmaDB, n)
}

// MedianUnbiased reports the median-unbiasedness of eq. (11): the median of
// r̂ is exactly r (the log-error is symmetric), which is why the median
// estimator needs no correction. Provided as an executable statement of
// the property for documentation and tests.
func MedianUnbiased(sigmaDB, n float64) bool {
	// Median of a log-normal with location ln r is exactly r.
	return true
}

// ErrInsufficientAnchors is returned when multilateration has fewer than
// three range observations.
var ErrInsufficientAnchors = errors.New("ranging: multilateration needs >= 3 anchors")

// Observation is a single anchor/range pair for multilateration.
type Observation struct {
	// Anchor is the reference position.
	Anchor geo.Point
	// Distance is the measured range in metres.
	Distance float64
	// Weight scales the residual (1/variance); zero means 1.
	Weight float64
}

// Multilaterate solves the weighted nonlinear least-squares position fix
//
//	argmin_x Σ w_i (|x − a_i| − d_i)²
//
// by Gauss–Newton iteration from the anchor centroid. It is the classical
// deterministic alternative to the firefly search (firefly.Localize); the
// two agree on well-conditioned geometries, and the benchmarks compare
// their cost. Returns the fix and the final RMS residual.
func Multilaterate(obs []Observation, maxIter int) (geo.Point, float64, error) {
	if len(obs) < 3 {
		return geo.Point{}, 0, ErrInsufficientAnchors
	}
	if maxIter < 1 {
		maxIter = 30
	}
	// Start at the weighted anchor centroid.
	var x, y, wsum float64
	for _, o := range obs {
		w := o.Weight
		if w <= 0 {
			w = 1
		}
		x += w * o.Anchor.X
		y += w * o.Anchor.Y
		wsum += w
	}
	p := geo.Point{X: x / wsum, Y: y / wsum}

	for iter := 0; iter < maxIter; iter++ {
		// Normal equations for the 2x2 Gauss-Newton step.
		var a11, a12, a22, b1, b2 float64
		for _, o := range obs {
			w := o.Weight
			if w <= 0 {
				w = 1
			}
			dx := p.X - o.Anchor.X
			dy := p.Y - o.Anchor.Y
			dist := math.Hypot(dx, dy)
			if dist < 1e-9 {
				dist = 1e-9
			}
			jx := dx / dist
			jy := dy / dist
			r := dist - o.Distance
			a11 += w * jx * jx
			a12 += w * jx * jy
			a22 += w * jy * jy
			b1 += w * jx * r
			b2 += w * jy * r
		}
		det := a11*a22 - a12*a12
		if math.Abs(det) < 1e-12 {
			break // degenerate geometry: keep the current iterate
		}
		stepX := (a22*b1 - a12*b2) / det
		stepY := (a11*b2 - a12*b1) / det
		p.X -= stepX
		p.Y -= stepY
		if math.Hypot(stepX, stepY) < 1e-9 {
			break
		}
	}
	var rss, n float64
	for _, o := range obs {
		r := p.Dist(o.Anchor) - o.Distance
		rss += r * r
		n++
	}
	return p, math.Sqrt(rss / n), nil
}

// RangeVarianceCRLB returns the Cramér–Rao lower bound on the variance of
// any unbiased RSSI range estimate at true distance r under shadowing σ
// (dB) and exponent n: Var ≥ (r·s)² with s = σ·ln10/(10n). It quantifies
// why RSSI ranging degrades linearly with distance — the "expected error"
// framing of Section III.
func RangeVarianceCRLB(r, sigmaDB, n float64) float64 {
	s := LogShadowScale(sigmaDB, n)
	return r * r * s * s
}
