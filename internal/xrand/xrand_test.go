package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Error("streams with different seeds produced identical output")
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(7)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := NewStream(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Gaussian(2, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Gaussian stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalDBMoments(t *testing.T) {
	s := NewStream(13)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.LogNormalDB(10)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.15 {
		t.Errorf("shadowing mean = %v, want ~0", mean)
	}
	if math.Abs(std-10) > 0.15 {
		t.Errorf("shadowing stddev = %v, want ~10", std)
	}
}

func TestRayleighMean(t *testing.T) {
	s := NewStream(17)
	const n = 100000
	sigma := 2.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Rayleigh(sigma)
	}
	mean := sum / n
	want := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 0.03*want {
		t.Errorf("Rayleigh mean = %v, want ~%v", mean, want)
	}
}

func TestRayleighPowerDBUnitMean(t *testing.T) {
	s := NewStream(19)
	const n = 200000
	var sumLinear float64
	for i := 0; i < n; i++ {
		sumLinear += math.Pow(10, s.RayleighPowerDB()/10)
	}
	mean := sumLinear / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Rayleigh linear power mean = %v, want ~1", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(23)
	const n = 100000
	rate := 0.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestStreamsNamedDeterminism(t *testing.T) {
	f1 := NewStreams(99)
	f2 := NewStreams(99)
	// Request in different orders; same name must give same sequence.
	a := f1.Get("channel")
	_ = f1.Get("mobility")
	_ = f2.Get("mobility")
	b := f2.Get("channel")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("named streams are order-dependent")
		}
	}
}

func TestStreamsGetReturnsSameInstance(t *testing.T) {
	f := NewStreams(1)
	if f.Get("x") != f.Get("x") {
		t.Error("Get should return the same stream instance for a name")
	}
}

func TestStreamsIndependentNames(t *testing.T) {
	f := NewStreams(5)
	a := f.Get("a")
	b := f.Get("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams 'a' and 'b' agree on %d/100 draws; should be independent", same)
	}
}

func TestForkIndependence(t *testing.T) {
	f := NewStreams(77)
	r1 := f.Fork("rep-1").Get("channel")
	r2 := f.Fork("rep-2").Get("channel")
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Float64() == r2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams agree on %d/100 draws", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := NewStreams(7).Fork("rep-3").Get("x")
	b := NewStreams(7).Fork("rep-3").Get("x")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("fork is not deterministic")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(3)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewStreams(123).Seed() != 123 {
		t.Error("Seed() should return root seed")
	}
}

func TestDeriveSeedNonZero(t *testing.T) {
	// Regression guard: derived seeds must never be zero.
	for i := int64(0); i < 1000; i++ {
		if deriveSeed(i, "name") == 0 {
			t.Fatalf("deriveSeed(%d) == 0", i)
		}
	}
}
