package xrand

import (
	"math/rand"
	"testing"
)

// drawKinds exercises every variate method so a cursor round-trip covers all
// source-consumption patterns (single-step Float64, multi-step Norm/Exp
// rejection loops, Perm/Shuffle batches).
var drawKinds = []struct {
	name string
	draw func(s *Stream) float64
}{
	{"float64", func(s *Stream) float64 { return s.Float64() }},
	{"intn", func(s *Stream) float64 { return float64(s.Intn(97)) }},
	{"int63", func(s *Stream) float64 { return float64(s.Int63()) }},
	{"uniform", func(s *Stream) float64 { return s.Uniform(-2, 9) }},
	{"norm", func(s *Stream) float64 { return s.Norm() }},
	{"gaussian", func(s *Stream) float64 { return s.Gaussian(1, 2) }},
	{"lognormaldb", func(s *Stream) float64 { return s.LogNormalDB(8) }},
	{"rayleigh", func(s *Stream) float64 { return s.Rayleigh(1.5) }},
	{"rayleighpowerdb", func(s *Stream) float64 { return s.RayleighPowerDB() }},
	{"exp", func(s *Stream) float64 { return s.Exp(0.7) }},
	{"perm", func(s *Stream) float64 { return float64(s.Perm(13)[5]) }},
	{"shuffle", func(s *Stream) float64 {
		v := []int{0, 1, 2, 3, 4, 5, 6, 7}
		s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		return float64(v[3])
	}},
}

// TestCountingSourceTransparent pins that the cursor instrumentation does not
// change the draw sequence: a wrapped stream must replay math/rand verbatim.
func TestCountingSourceTransparent(t *testing.T) {
	s := NewStream(42)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		if got, want := s.Float64(), r.Float64(); got != want {
			t.Fatalf("draw %d: counting stream %v, bare math/rand %v", i, got, want)
		}
	}
	s2 := NewStream(43)
	r2 := rand.New(rand.NewSource(43))
	for i := 0; i < 200; i++ {
		if got, want := s2.Norm(), r2.NormFloat64(); got != want {
			t.Fatalf("norm draw %d: counting stream %v, bare math/rand %v", i, got, want)
		}
	}
}

// TestSeekRoundTrip is the issue's contract: draw k, snapshot Pos, draw m,
// Seek back, and the next m draws must repeat exactly — for every variate.
func TestSeekRoundTrip(t *testing.T) {
	for _, kind := range drawKinds {
		t.Run(kind.name, func(t *testing.T) {
			s := NewStream(1234)
			const k, m = 37, 53
			for i := 0; i < k; i++ {
				kind.draw(s)
			}
			pos := s.Pos()
			want := make([]float64, m)
			for i := range want {
				want[i] = kind.draw(s)
			}
			s.Seek(pos)
			if s.Pos() != pos {
				t.Fatalf("Pos after Seek = %d, want %d", s.Pos(), pos)
			}
			for i := 0; i < m; i++ {
				if got := kind.draw(s); got != want[i] {
					t.Fatalf("replayed draw %d = %v, want %v", i, got, want[i])
				}
			}
		})
	}
}

// TestSeekIntoFreshStream checks positions are absolute: a brand-new stream
// with the same seed Seek'd to pos continues identically to the original.
func TestSeekIntoFreshStream(t *testing.T) {
	a := NewStream(777)
	for i := 0; i < 100; i++ {
		a.Norm()
	}
	pos := a.Pos()
	b := NewStream(777)
	b.Seek(pos)
	for i := 0; i < 100; i++ {
		if x, y := a.Norm(), b.Norm(); x != y {
			t.Fatalf("draw %d after absolute Seek diverged: %v vs %v", i, x, y)
		}
	}
}

func TestPosAdvances(t *testing.T) {
	s := NewStream(5)
	if s.Pos() != 0 {
		t.Fatalf("fresh stream Pos = %d, want 0", s.Pos())
	}
	s.Float64()
	if s.Pos() == 0 {
		t.Fatal("Pos did not advance after a draw")
	}
	if s.StreamSeed() != 5 {
		t.Fatalf("StreamSeed = %d, want 5", s.StreamSeed())
	}
}

func TestStreamsCursorsRestore(t *testing.T) {
	f := NewStreams(99)
	a := f.Get("alpha")
	b := f.Get("beta")
	for i := 0; i < 10; i++ {
		a.Float64()
	}
	for i := 0; i < 25; i++ {
		b.Norm()
	}
	cur := f.Cursors()
	if len(cur) != 2 || cur[0].Name != "alpha" || cur[1].Name != "beta" {
		t.Fatalf("Cursors = %+v, want sorted [alpha beta]", cur)
	}
	want := make([]float64, 40)
	for i := range want {
		want[i] = a.Float64() + b.Float64()
	}

	// Restore into a fresh factory (the resume path) — streams must be
	// created on demand and continue identically.
	g := NewStreams(99)
	g.Get("alpha").Float64() // pre-advance to prove Restore is absolute
	g.Restore(cur)
	ga, gb := g.Get("alpha"), g.Get("beta")
	for i := range want {
		if got := ga.Float64() + gb.Float64(); got != want[i] {
			t.Fatalf("restored draw %d = %v, want %v", i, got, want[i])
		}
	}
}
