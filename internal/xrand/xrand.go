// Package xrand provides deterministic, independently seeded random number
// streams for the simulator, plus the non-uniform variates the channel and
// mobility models need (Gaussian, log-normal, Rayleigh, exponential).
//
// Every stochastic component of the simulator draws from a named Stream
// obtained from a Streams factory. Streams derived from the same root seed
// and name sequence are bit-identical across runs, which makes every
// experiment reproducible from (seed, parameters) alone — the property the
// Vienna LTE simulator line of work calls "enabling reproducibility".
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Stream is a deterministic pseudo-random stream. It is a thin wrapper over
// math/rand with the distributions the simulator needs. A Stream is not safe
// for concurrent use; give each goroutine its own named stream.
type Stream struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the stock math/rand source and counts low-level state
// advances. It implements both Int63 and Uint64 so rand.New keeps taking the
// Source64 fast path it takes for a bare rand.NewSource — draw sequences are
// bit-identical to an unwrapped source. Every generator method of rand.Rand
// consumes the source one step at a time (Int63 and Uint64 each advance the
// underlying state by exactly one step), so the counter is a complete cursor:
// (seed, n) determines all future draws.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// NewStream returns a stream seeded directly with seed.
func NewStream(seed int64) *Stream {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Stream{r: rand.New(src), src: src, seed: seed}
}

// StreamSeed returns the seed the stream was created from.
func (s *Stream) StreamSeed() int64 { return s.seed }

// Pos returns the stream's cursor: the number of low-level source steps
// consumed so far. Together with the seed it fully determines the stream's
// future output, so a snapshot needs only (seed, Pos).
func (s *Stream) Pos() uint64 { return s.src.n }

// Seek repositions the stream to the absolute cursor pos, counted from the
// seed. Seeking is O(pos): the source is re-created from the seed and the
// skipped steps are replayed. After Seek(Pos()) the stream continues exactly
// as if nothing happened; after Seek(p) with p < Pos() it replays history.
func (s *Stream) Seek(pos uint64) {
	src := &countingSource{src: rand.NewSource(s.seed).(rand.Source64)}
	for i := uint64(0); i < pos; i++ {
		src.src.Uint64()
	}
	src.n = pos
	s.src = src
	s.r = rand.New(src)
}

// Float64 returns a uniform variate in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0,n). It panics if n <= 0, matching
// math/rand.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a standard Gaussian variate (mean 0, stddev 1).
func (s *Stream) Norm() float64 { return s.r.NormFloat64() }

// Gaussian returns a Gaussian variate with the given mean and stddev.
func (s *Stream) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormalDB draws a log-normal shadowing value expressed in dB: a Gaussian
// in the dB domain with mean 0 and the given stddev. This is exactly the
// random variable x of eq. (9) in the paper.
func (s *Stream) LogNormalDB(sigmaDB float64) float64 {
	return sigmaDB * s.r.NormFloat64()
}

// Rayleigh returns a Rayleigh variate with scale sigma. The squared envelope
// of a Rayleigh channel is exponential; Rayleigh fading is the standard model
// for NLOS urban-micro (UMi) fast fading, which Table I of the paper calls
// "Fast Fading UMi (NLOS)".
func (s *Stream) Rayleigh(sigma float64) float64 {
	// Inverse-CDF: F(x) = 1 - exp(-x^2 / (2 sigma^2)).
	u := s.r.Float64()
	for u == 0 { // avoid log(0)
		u = s.r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// RayleighPowerDB returns the fading power gain of a unit-mean Rayleigh
// channel, in dB. The linear power gain is exponentially distributed with
// mean 1, so the dB value has mean ≈ -2.51 dB and a long negative tail
// (deep fades).
func (s *Stream) RayleighPowerDB() float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	g := -math.Log(u) // Exp(1): unit-mean linear power gain
	return 10 * math.Log10(g)
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (s *Stream) Exp(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Streams derives named, independent child streams from one root seed.
// The same (root seed, name) pair always yields the same stream, regardless
// of the order in which streams are requested — names are hashed, not
// sequence-numbered.
type Streams struct {
	mu   sync.Mutex
	seed int64
	open map[string]*Stream
}

// NewStreams returns a stream factory rooted at seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed, open: make(map[string]*Stream)}
}

// Seed returns the root seed the factory was built with.
func (f *Streams) Seed() int64 {
	return f.seed
}

// Get returns the stream for name, creating it deterministically on first
// use. Calling Get twice with the same name returns the same *Stream (so
// state advances across call sites sharing a name).
func (f *Streams) Get(name string) *Stream {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.open[name]; ok {
		return s
	}
	s := NewStream(deriveSeed(f.seed, name))
	f.open[name] = s
	return s
}

// Cursor records one named stream's absolute position, for snapshots. The
// stream itself is reconstructable from the factory's root seed and the
// name, so (Name, Pos) is all a checkpoint has to carry.
type Cursor struct {
	Name string `json:"name"`
	Pos  uint64 `json:"pos"`
}

// Cursors returns the cursor of every stream opened so far, sorted by name
// so snapshots are byte-stable regardless of map iteration order.
func (f *Streams) Cursors() []Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Cursor, 0, len(f.open))
	for name, s := range f.open {
		out = append(out, Cursor{Name: name, Pos: s.Pos()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Restore seeks every named stream to its recorded cursor, creating streams
// that have not been opened yet in this factory. Positions are absolute
// (counted from the derived seed), so Restore is correct whether the factory
// is fresh or has already replayed some draws — for example after re-running
// deterministic setup code before overlaying a snapshot.
func (f *Streams) Restore(cursors []Cursor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range cursors {
		s, ok := f.open[c.Name]
		if !ok {
			s = NewStream(deriveSeed(f.seed, c.Name))
			f.open[c.Name] = s
		}
		s.Seek(c.Pos)
	}
}

// Fork returns a new factory whose root seed is derived from this factory's
// seed and the given name. Use it to give a sub-experiment (for example one
// repetition of a sweep) its own independent universe of streams.
func (f *Streams) Fork(name string) *Streams {
	return NewStreams(deriveSeed(f.seed, name))
}

// Reroot rebases the factory in place onto a new root seed derived from the
// current seed and label, re-seeding every open stream at position zero.
// Unlike Fork, existing *Stream pointers stay valid and switch to the new
// universe — components that captured a stream reference (per-sender pulse
// streams, channel sampler closures) follow the reroot without rewiring.
//
// This is the seed-branching primitive: restore a checkpoint, Reroot with a
// branch label, and the run continues from the shared trajectory prefix into
// an independent randomness universe. The same (history, label) pair always
// yields the same branch. Cursors taken after a Reroot are positions in the
// new universe, so a rerooted run's own snapshots only restore into a factory
// that replayed the same reroot sequence.
func (f *Streams) Reroot(label string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seed = deriveSeed(f.seed, label)
	for name, s := range f.open {
		s.reseed(deriveSeed(f.seed, name))
	}
}

// reseed rebases the stream onto a fresh source at position zero.
func (s *Stream) reseed(seed int64) {
	s.seed = seed
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	s.src = src
	s.r = rand.New(src)
}

func deriveSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	v := int64(h.Sum64())
	if v == 0 {
		v = 1 // math/rand treats a zero seed specially; avoid it
	}
	return v
}
