package energy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rach"
)

func TestChargeArithmetic(t *testing.T) {
	m := Model{TxPerPS: 2, RxPerDecode: 0.5, IdlePerDeviceSlot: 0.1}
	var c rach.Counters
	c.Tx[rach.RACH1] = 10
	c.Tx[rach.RACH2] = 5
	c.Rx[rach.RACH1] = 40
	b := m.Charge(c, 20, 100)
	if b.TxMJ != 30 {
		t.Errorf("tx = %v, want 30", b.TxMJ)
	}
	if b.RxMJ != 20 {
		t.Errorf("rx = %v, want 20", b.RxMJ)
	}
	if b.IdleMJ != 200 {
		t.Errorf("idle = %v, want 200", b.IdleMJ)
	}
	if b.TotalMJ != 250 {
		t.Errorf("total = %v, want 250", b.TotalMJ)
	}
	if got := b.PerDevice(20); got != 12.5 {
		t.Errorf("per-device = %v, want 12.5", got)
	}
	if b.PerDevice(0) != 0 {
		t.Error("zero devices should yield 0")
	}
}

func TestLTEDefaultsSane(t *testing.T) {
	m := LTEDefaults()
	if m.TxPerPS <= m.RxPerDecode || m.RxPerDecode <= m.IdlePerDeviceSlot {
		t.Error("tx should cost more than rx, rx more than idle")
	}
	if m.TxPerPS <= 0 {
		t.Error("costs must be positive")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{TxMJ: 1, RxMJ: 2, IdleMJ: 3, TotalMJ: 6}
	s := b.String()
	if !strings.Contains(s, "6.0 mJ") || !strings.Contains(s, "tx 1.0") {
		t.Errorf("String = %q", s)
	}
}

func TestZeroRunZeroEnergy(t *testing.T) {
	b := LTEDefaults().Charge(rach.Counters{}, 0, 0)
	if b.TotalMJ != 0 || math.Signbit(b.TotalMJ) {
		t.Errorf("empty run energy = %v", b.TotalMJ)
	}
}
