// Package energy provides a per-device energy accounting model for the
// protocol runs. The paper's introduction motivates D2D with battery-bound
// UEs and cites a line of power-saving discovery protocols ([4]–[9]); this
// model makes the trade-off measurable: a protocol that converges in fewer
// slots with fewer messages also drains less battery, and the split between
// transmit, receive and idle-listening energy shows *where* each protocol
// spends it.
//
// The numbers are an LTE UE power model at PS granularity: transmitting a
// 1 ms PS at 23 dBm through a ~30 %-efficient PA plus TX circuitry costs
// about 0.8 mJ; actively decoding a detected PS about 0.1 mJ; and keeping
// the receiver listening for one 1 ms slot about 0.05 mJ. Absolute values
// are representative, not calibrated to one chipset — comparisons between
// protocols are the point.
package energy

import (
	"fmt"

	"repro/internal/rach"
	"repro/internal/units"
)

// Model prices the three activities of a PS-based protocol.
type Model struct {
	// TxPerPS is the energy of one PS transmission, in millijoules.
	TxPerPS float64
	// RxPerDecode is the energy of decoding one received PS, in mJ.
	RxPerDecode float64
	// IdlePerDeviceSlot is the listening cost of one device for one slot,
	// in mJ.
	IdlePerDeviceSlot float64
}

// LTEDefaults returns the representative LTE UE model described in the
// package comment.
func LTEDefaults() Model {
	return Model{TxPerPS: 0.8, RxPerDecode: 0.1, IdlePerDeviceSlot: 0.05}
}

// Breakdown itemizes a run's energy.
type Breakdown struct {
	TxMJ    float64
	RxMJ    float64
	IdleMJ  float64
	TotalMJ float64
}

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	return fmt.Sprintf("%.1f mJ (tx %.1f, rx %.1f, idle %.1f)", b.TotalMJ, b.TxMJ, b.RxMJ, b.IdleMJ)
}

// Charge prices a run: counters carry the PS transmissions and decodes,
// devices and slots the listening time.
func (m Model) Charge(counters rach.Counters, devices int, slots units.Slot) Breakdown {
	b := Breakdown{
		TxMJ:   m.TxPerPS * float64(counters.TotalTx()),
		RxMJ:   m.RxPerDecode * float64(counters.TotalRx()),
		IdleMJ: m.IdlePerDeviceSlot * float64(devices) * float64(slots),
	}
	b.TotalMJ = b.TxMJ + b.RxMJ + b.IdleMJ
	return b
}

// PerDevice returns the average energy per device in millijoules.
func (b Breakdown) PerDevice(devices int) float64 {
	if devices <= 0 {
		return 0
	}
	return b.TotalMJ / float64(devices)
}
