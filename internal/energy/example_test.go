package energy_test

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/rach"
)

// Example prices a small run: 100 PS transmissions, 300 decodes, 20 devices
// listening for 1000 slots.
func Example() {
	var c rach.Counters
	c.Tx[rach.RACH1] = 100
	c.Rx[rach.RACH1] = 300
	b := energy.LTEDefaults().Charge(c, 20, 1000)
	fmt.Println(b)
	fmt.Printf("%.1f mJ per device\n", b.PerDevice(20))
	// Output:
	// 1110.0 mJ (tx 80.0, rx 30.0, idle 1000.0)
	// 55.5 mJ per device
}
