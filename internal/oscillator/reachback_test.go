package oscillator

import (
	"testing"

	"repro/internal/xrand"
)

// Tests for the Reachback Firefly discipline (ref [13] of the paper):
// pulses queue for a processing delay D instead of coupling instantly.
// The measurable consequences, pinned here: no same-slot absorption
// cascades; a follower locks exactly D slots behind its leader (the
// correction is always D slots stale); and a mesh contracts from random
// phases to a spread on the order of D — bounded sync error, not perfect
// slot synchrony, exactly how RFA's testbed results read.

func TestReachbackQueuesInsteadOfJumping(t *testing.T) {
	o := New(0.5, 100, DefaultCoupling())
	o.ReachbackDelaySlots = 5
	before := o.Phase
	if o.OnPulse(10) {
		t.Fatal("reachback pulse must not fire immediately")
	}
	if o.Phase != before {
		t.Fatal("reachback pulse must not move the phase immediately")
	}
	// The jump shows up only after the delay matures (Advance at 15).
	for slot := int64(11); slot < 15; slot++ {
		o.Advance(slot)
	}
	pre := o.Phase
	o.Advance(15)
	step := Threshold / 100
	if o.Phase-pre <= step+1e-12 {
		t.Error("matured jump did not apply")
	}
}

func TestReachbackNeverCascadesSameSlot(t *testing.T) {
	o := New(0.99, 100, NewCoupling(3, 0.5)) // would absorb instantly
	o.ReachbackDelaySlots = 5
	if o.OnPulse(5) {
		t.Error("reachback must suppress same-slot absorption")
	}
}

func TestReachbackPairLocksAtDelay(t *testing.T) {
	for _, d := range []int{2, 5, 10} {
		osc := []*Oscillator{
			New(0.5, 100, NewCoupling(3, 0.2)),
			New(0.8, 100, NewCoupling(3, 0.2)),
		}
		for _, o := range osc {
			o.ReachbackDelaySlots = d
		}
		e := &Ensemble{Oscillators: osc}
		last := map[int]int64{}
		for i := 0; i < 50000; i++ {
			for _, f := range e.Step() {
				last[f] = e.Slot()
			}
		}
		gap := last[0] - last[1]
		if gap < 0 {
			gap = -gap
		}
		if gap > 50 {
			gap = 100 - gap
		}
		if gap != int64(d) {
			t.Errorf("delay %d: pair locked %d slots apart, want exactly the delay", d, gap)
		}
	}
}

func TestReachbackMeshBoundedSpread(t *testing.T) {
	src := xrand.NewStream(7)
	phases := make([]float64, 15)
	for i := range phases {
		phases[i] = src.Float64()
	}
	initial := PhaseSpread(phases)
	osc := make([]*Oscillator, len(phases))
	for i, p := range phases {
		osc[i] = New(p, 100, NewCoupling(3, 0.2))
		osc[i].ReachbackDelaySlots = 10
	}
	e := &Ensemble{Oscillators: osc}
	for i := 0; i < 200000; i++ {
		e.Step()
	}
	final := PhaseSpread(e.Phases())
	if final >= initial/2 {
		t.Errorf("mesh spread %v did not contract from %v", final, initial)
	}
	// Bounded error on the order of the delay (10 slots = 0.1 of the
	// cycle), not perfect synchrony.
	if final > 0.2 {
		t.Errorf("mesh spread %v exceeds twice the delay bound", final)
	}
}

func TestReachbackZeroDelayIsImmediate(t *testing.T) {
	o := New(0.5, 100, DefaultCoupling())
	o.ReachbackDelaySlots = 0
	before := o.Phase
	o.OnPulse(10)
	if o.Phase <= before {
		t.Error("zero delay should couple immediately")
	}
}
