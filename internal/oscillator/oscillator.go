// Package oscillator implements the firefly synchronization model of
// Section III: Mirollo–Strogatz pulse-coupled integrate-and-fire oscillators
// with the piecewise-linear phase response curve of eq. (5), plus ensemble
// utilities (order parameter, synchrony detection) used by the protocol
// layers to decide when a network has converged.
//
// Each oscillator carries a phase θ ∈ [0, θth] that ramps linearly
// (eq. (3): dθ/dt = θth/T). When θ reaches the threshold the oscillator
// "fires" (broadcasts a PS) and resets to zero; when it hears a neighbour
// fire it jumps its phase by the PRC (eq. (4)):
//
//	θ ← min(α·θ + β, θth)   with α = e^{aε}, β = (e^{aε}−1)/(e^{a}−1)
//
// Mirollo & Strogatz prove that for α > 1, β > 0 (i.e. a > 0, ε > 0) an
// all-to-all network always converges to synchrony; the paper leans on the
// companion result of [17] that tree topologies also always synchronize.
package oscillator

import (
	"fmt"
	"math"
)

// Threshold is θth. The paper normalizes the phase threshold to 1.
const Threshold = 1.0

// Coupling holds the PRC parameters of eq. (5), derived from the dissipation
// factor a and the amplitude increment ε.
type Coupling struct {
	// Alpha is the multiplicative phase-jump factor, α = e^{aε}.
	Alpha float64
	// Beta is the additive phase-jump term, β = (e^{aε}−1)/(e^{a}−1).
	Beta float64
}

// NewCoupling computes α and β from the dissipation factor a and the pulse
// amplitude increment epsilon, exactly per eq. (5). It panics if a or
// epsilon is non-positive, because convergence requires α > 1 and β > 0.
func NewCoupling(a, epsilon float64) Coupling {
	if a <= 0 || epsilon <= 0 {
		panic(fmt.Sprintf("oscillator: coupling needs a>0, ε>0 (got a=%v, ε=%v)", a, epsilon))
	}
	alpha := math.Exp(a * epsilon)
	beta := (math.Exp(a*epsilon) - 1) / (math.Exp(a) - 1)
	return Coupling{Alpha: alpha, Beta: beta}
}

// DefaultCoupling is a moderate setting (a = 3, ε = 0.1) that satisfies the
// Mirollo–Strogatz convergence condition with phase jumps of a few percent
// of the cycle — comparable to the settings used in firefly-sync literature.
func DefaultCoupling() Coupling { return NewCoupling(3, 0.1) }

// WeakCoupling is the low-gain setting (a = 3, ε = 0.02) the protocol
// experiments use: per-pulse jumps of a fraction of a percent, so that mesh
// synchronization time depends visibly on network extent instead of
// collapsing to a single absorption cascade.
func WeakCoupling() Coupling { return NewCoupling(3, 0.02) }

// Converges reports whether the coupling satisfies the Mirollo–Strogatz
// sufficient condition α > 1, β > 0.
func (c Coupling) Converges() bool { return c.Alpha > 1 && c.Beta > 0 }

// Jump applies the PRC to a phase: min(α·θ + β, Threshold).
func (c Coupling) Jump(theta float64) float64 {
	v := c.Alpha*theta + c.Beta
	if v > Threshold {
		return Threshold
	}
	return v
}

// Oscillator is one integrate-and-fire oscillator with a slotted clock.
type Oscillator struct {
	// Phase is the current phase in [0, Threshold].
	Phase float64
	// PeriodSlots is the free-running period T expressed in simulation
	// slots; the phase ramps by Threshold/PeriodSlots per slot.
	PeriodSlots int
	// Coupling is the PRC applied on pulse reception.
	Coupling Coupling
	// Refractory, when positive, is the number of slots after a fire
	// during which incoming pulses are ignored. A short refractory period
	// is the standard cure for same-instant echo storms on radio channels
	// (cf. the Reachback Firefly Algorithm's treatment).
	Refractory int
	// JumpsPerCycle caps how many PRC jumps are applied between two of
	// this oscillator's own fires; 0 means unlimited (pure Mirollo–
	// Strogatz). Slotted radio implementations apply one adjustment per
	// frame from the superimposed received pulses (MEMFIS-style); the
	// protocol layers set 1.
	JumpsPerCycle int
	// ListenPhase is the phase the listening window opens at: pulses
	// arriving while Phase < ListenPhase neither couple nor consume the
	// jump budget. Radio firefly implementations (RFA, MEMFIS) listen in
	// a window near their own firing instant; 0 listens always.
	ListenPhase float64
	// Rate scales the phase ramp to model clock drift: an oscillator with
	// Rate 1.001 runs 1000 ppm fast. Zero is treated as 1 (nominal).
	// With drifted clocks synchrony is no longer an absorbing state — it
	// must be actively maintained by pulse coupling, which tolerates
	// drift only up to roughly β·T slots per period.
	Rate float64
	// ReachbackDelaySlots enables the Reachback Firefly Algorithm
	// discipline (Werner-Allen et al., the paper's ref [13]): a pulse's
	// PRC jump is not applied at reception but queued and applied after
	// this many slots — the radio/MAC processing delay RFA was designed
	// around. The delay must stay well below the period: queuing jumps a
	// full cycle (as a naive "apply at my next fire" reading would)
	// flips the dynamics into stable antiphase/splay locking, the classic
	// delayed-pulse-coupling result. Zero means immediate coupling.
	ReachbackDelaySlots int

	refractUntil int64 // absolute slot until which pulses are ignored
	jumpsUsed    int   // PRC jumps consumed since the last own fire
	queued       []queuedJump

	// Lazy segment state. Between discontinuities (fires, PRC jumps,
	// matured reachback corrections, external Phase writes, step-size
	// changes) the ramp is linear, so the phase after k uninterrupted
	// steps is the closed form fl(segBase + fl(k·segStep)) — one rounding
	// for the product, one for the sum, independent of how the k steps
	// are grouped. Advance, AdvanceTo and NextFire all evaluate exactly
	// this expression, which is what makes slot-by-slot stepping and
	// event-driven fast-forwarding bit-identical.
	segBase  float64 // phase at the segment origin
	segSteps int64   // ramp steps taken since the segment origin
	segStep  float64 // per-slot increment the segment was built with
	lastMat  float64 // Phase as last materialized (detects external writes)
	lastSlot int64   // slot of the last Advance/AdvanceTo step
}

// fireEpsilon is the tolerance of the firing comparison: a phase within
// 1e-12 of Threshold counts as having reached it, absorbing the rounding of
// the ramp arithmetic (e.g. 100 × 0.01 accumulating to 1.0000000000000002).
const fireEpsilon = 1e-12

// queuedJump is a matured-delivery PRC adjustment (reachback mode).
type queuedJump struct {
	applyAt int64
	delta   float64
}

// New returns an oscillator with the given initial phase, period (slots) and
// coupling and a 1-slot refractory window.
func New(phase float64, periodSlots int, c Coupling) *Oscillator {
	if periodSlots <= 0 {
		panic("oscillator: period must be positive")
	}
	p := clampPhase(phase)
	return &Oscillator{Phase: p, PeriodSlots: periodSlots, Coupling: c, Refractory: 1,
		segBase: p, lastMat: p}
}

func clampPhase(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > Threshold {
		return Threshold
	}
	return p
}

// stepSize is the per-slot phase increment (eq. (3)), scaled by Rate.
func (o *Oscillator) stepSize() float64 {
	rate := o.Rate
	if rate == 0 {
		rate = 1
	}
	return rate * Threshold / float64(o.PeriodSlots)
}

// segPhase materializes the phase after k ramp steps from base. The
// intermediate assignment forces the product to round before the sum (no
// fused multiply-add), so every caller — Advance, AdvanceTo, NextFire —
// evaluates the identical float64 sequence.
func segPhase(base float64, k int64, step float64) float64 {
	ramp := float64(k) * step
	return base + ramp
}

// resegment starts a new linear segment at the current Phase if the phase
// was written externally (sync-word adoption, the BS timing broadcast,
// tests poking Phase) or the step size changed (Rate/PeriodSlots edits),
// and returns the step to ramp with.
func (o *Oscillator) resegment() float64 {
	step := o.stepSize()
	if o.Phase != o.lastMat || step != o.segStep {
		o.segBase = o.Phase
		o.segSteps = 0
		o.segStep = step
		o.lastMat = o.Phase
	}
	return step
}

// rebaseHere restarts the segment at the current Phase (after a PRC jump or
// a matured reachback correction).
func (o *Oscillator) rebaseHere() {
	o.segBase = o.Phase
	o.segSteps = 0
	o.lastMat = o.Phase
}

// fireReset is the threshold crossing: phase to zero, refractory window
// opens, jump budget refills. Queued corrections survive the reset: a jump
// earned just before firing still advances the next cycle, which is how a
// laggard finishes closing the last few slots.
func (o *Oscillator) fireReset(nowSlot int64) {
	o.Phase = 0
	o.segBase = 0
	o.segSteps = 0
	o.lastMat = 0
	o.refractUntil = nowSlot + int64(o.Refractory)
	o.jumpsUsed = 0
}

// applyMatured folds queued reachback jumps whose delay has elapsed into the
// phase (in queue order) and restarts the segment at the corrected value.
func (o *Oscillator) applyMatured(nowSlot int64) {
	kept := o.queued[:0]
	applied := false
	for _, q := range o.queued {
		if q.applyAt <= nowSlot {
			o.Phase += q.delta
			applied = true
		} else {
			kept = append(kept, q)
		}
	}
	o.queued = kept
	if applied {
		o.rebaseHere()
	}
}

// Advance moves the oscillator forward one slot (eq. (3)) and reports
// whether it fires in this slot. After a fire the phase is reset to zero
// (eq. (4), first case).
func (o *Oscillator) Advance(nowSlot int64) (fired bool) {
	step := o.resegment()
	// Apply matured reachback jumps first.
	if len(o.queued) > 0 {
		o.applyMatured(nowSlot)
	}
	o.segSteps++
	o.Phase = segPhase(o.segBase, o.segSteps, step)
	o.lastSlot = nowSlot
	if o.Phase >= Threshold-fireEpsilon {
		o.fireReset(nowSlot)
		return true
	}
	o.lastMat = o.Phase
	return false
}

// AdvanceTo advances the oscillator through every slot in (lastSlot,
// target], exactly as if Advance had been called once per slot, and reports
// whether it fires at target. Slots at or before the last step are a no-op.
//
// The caller must not let AdvanceTo skip over a fire: the event engine
// consults NextFire and steps to each firing slot explicitly, so a
// threshold crossing strictly before target means the fire schedule is
// stale — a contract violation worth failing loud on, because silently
// swallowing the fire would desynchronize the run from the slot engine.
func (o *Oscillator) AdvanceTo(target int64) (fired bool) {
	if target <= o.lastSlot {
		return false
	}
	step := o.resegment()
	for o.lastSlot < target {
		// Next queued-jump maturity in range, if any. Matured jumps apply
		// at the top of their slot, before that slot's ramp, so they split
		// the linear segment.
		m, hasM := int64(0), false
		for _, q := range o.queued {
			if q.applyAt <= target && (!hasM || q.applyAt < m) {
				m, hasM = q.applyAt, true
			}
		}
		pureEnd := target
		if hasM {
			pureEnd = m - 1
		}
		if pureEnd > o.lastSlot {
			if d, fires := o.fireStep(step, pureEnd-o.lastSlot); fires {
				at := o.lastSlot + d
				if at != target {
					panic("oscillator: AdvanceTo skipped a fire; step to NextFire first")
				}
				o.segSteps += d
				o.lastSlot = at
				o.fireReset(at)
				return true
			}
			o.segSteps += pureEnd - o.lastSlot
			o.Phase = segPhase(o.segBase, o.segSteps, step)
			o.lastMat = o.Phase
			o.lastSlot = pureEnd
		}
		if hasM {
			// Slot m itself: corrections first, then one ramp step —
			// the exact order Advance uses.
			o.applyMatured(m)
			o.segSteps++
			o.Phase = segPhase(o.segBase, o.segSteps, step)
			o.lastSlot = m
			if o.Phase >= Threshold-fireEpsilon {
				if m != target {
					panic("oscillator: AdvanceTo skipped a fire; step to NextFire first")
				}
				o.fireReset(m)
				return true
			}
			o.lastMat = o.Phase
		}
	}
	return false
}

// fireStep returns the smallest d ∈ [1, span] whose materialized phase on
// the current segment meets the firing threshold, or ok=false if the ramp
// stays below it for the whole span. The analytic guess ⌈(θth−base)/step⌉
// lands within an ulp or two of the answer; the monotone adjustment loops
// settle it using the exact comparison Advance evaluates.
func (o *Oscillator) fireStep(step float64, span int64) (d int64, ok bool) {
	if step <= 0 {
		return 0, false
	}
	fireAt := Threshold - fireEpsilon
	lo, hi := o.segSteps+1, o.segSteps+span
	guess := lo
	if r := (fireAt - o.segBase) / step; r > float64(hi) {
		guess = hi + 1
	} else if r > float64(lo) {
		guess = int64(math.Ceil(r))
	}
	for guess > lo && segPhase(o.segBase, guess-1, step) >= fireAt {
		guess--
	}
	for guess <= hi && segPhase(o.segBase, guess, step) < fireAt {
		guess++
	}
	if guess > hi {
		return 0, false
	}
	return guess - o.segSteps, true
}

// NextFire predicts the absolute slot of the oscillator's next fire under
// free running — no further pulses, queued reachback corrections maturing
// on schedule — or ok=false if it never reaches the threshold (non-positive
// effective step, or a horizon beyond any representable run). It evaluates
// the same segment expression Advance does, so the prediction is exact: the
// event engine schedules it, fast-forwards, and the fire happens on that
// slot, bit for bit.
func (o *Oscillator) NextFire() (slot int64, ok bool) {
	step := o.resegment()
	base, k, last := o.segBase, o.segSteps, o.lastSlot
	phase := o.Phase
	var pending []queuedJump
	if len(o.queued) > 0 {
		pending = append(pending, o.queued...)
	}
	fireAt := Threshold - fireEpsilon
	for {
		m, hasM := int64(0), false
		for _, q := range pending {
			if !hasM || q.applyAt < m {
				m, hasM = q.applyAt, true
			}
		}
		if r := (fireAt - base) / step; step > 0 && r <= 1e15 {
			// Fire on the pure ramp strictly before the next maturity?
			lo := k + 1
			guess := lo
			if r > float64(lo) {
				guess = int64(math.Ceil(r))
			}
			for guess > lo && segPhase(base, guess-1, step) >= fireAt {
				guess--
			}
			for segPhase(base, guess, step) < fireAt {
				guess++
			}
			if at := last + (guess - k); !hasM || at < m {
				return at, true
			}
		}
		if !hasM {
			// Non-positive step, or a horizon beyond any representable
			// run, with no queued correction left to change that.
			return 0, false
		}
		// Ramp to the end of slot m−1, apply the matured corrections in
		// queue order (what applyMatured does at the top of slot m), and
		// restart the segment there.
		phase = segPhase(base, k+(m-1-last), step)
		var kept []queuedJump
		for _, q := range pending {
			if q.applyAt <= m {
				phase += q.delta
			} else {
				kept = append(kept, q)
			}
		}
		pending = kept
		base, k, last = phase, 0, m-1
	}
}

// Rebase pins an externally assigned Phase as the oscillator's state at the
// end of slot nowSlot without ramping through the slots in between. The
// event engine's protocol hooks call it after overwriting Phase (sync-word
// adoption, the BS timing broadcast) on a lazily advanced oscillator; the
// slot engine never needs it because Advance re-detects external writes
// every slot.
func (o *Oscillator) Rebase(nowSlot int64) {
	o.segBase = o.Phase
	o.segSteps = 0
	o.segStep = o.stepSize()
	o.lastMat = o.Phase
	o.lastSlot = nowSlot
}

// LastSlot returns the slot of the oscillator's most recent Advance,
// AdvanceTo or Rebase — how far its lazily materialized state has caught up.
func (o *Oscillator) LastSlot() int64 { return o.lastSlot }

// OnPulse applies the coupling jump for one received pulse (eq. (4), second
// case). If the jump pushes the phase to the threshold the oscillator fires
// immediately — phase resets to zero and OnPulse returns true. This is the
// Mirollo–Strogatz "absorption": the receiver fires in the same instant as
// the sender and the two are synchronized from then on. The refractory
// window (which opens on every fire) bounds each oscillator to at most one
// fire per slot, so same-slot cascades always terminate. Pulses arriving
// inside the refractory window are ignored and return false.
func (o *Oscillator) OnPulse(nowSlot int64) (fired bool) {
	if nowSlot < o.refractUntil {
		return false
	}
	if o.Phase < o.ListenPhase {
		return false
	}
	if o.JumpsPerCycle > 0 && o.jumpsUsed >= o.JumpsPerCycle {
		return false
	}
	o.jumpsUsed++
	if o.ReachbackDelaySlots > 0 {
		// Queue the jump for the processing delay (RFA discipline);
		// no same-slot absorption cascade is possible.
		o.queued = append(o.queued, queuedJump{
			applyAt: nowSlot + int64(o.ReachbackDelaySlots),
			delta:   o.Coupling.Jump(o.Phase) - o.Phase,
		})
		return false
	}
	o.Phase = o.Coupling.Jump(o.Phase)
	if o.Phase >= Threshold-fireEpsilon {
		o.fireReset(nowSlot)
		return true
	}
	o.rebaseHere()
	return false
}

// QueuedJumps returns the number of reachback PRC corrections queued but not
// yet matured. The sharded slot engine compares it (with Phase) around an
// OnPulse to decide whether the pulse changed the trajectory — a refractory
// or listen-window rejection leaves both untouched, and skipping the
// next-fire recompute for those keeps the dirty set proportional to actual
// couplings instead of deliveries.
func (o *Oscillator) QueuedJumps() int { return len(o.queued) }

// SlotsToFire returns how many Advance calls remain until the oscillator
// fires from its current phase, assuming no further pulses. It is exact —
// the prediction comes from the same segment arithmetic Advance steps with.
// A non-positive effective ramp never fires; that reports math.MaxInt.
func (o *Oscillator) SlotsToFire() int {
	at, ok := o.NextFire()
	if !ok {
		return math.MaxInt
	}
	return int(at - o.lastSlot)
}

// OrderParameter returns the Kuramoto order parameter r ∈ [0,1] of a set of
// phases (interpreted as fractions of a cycle): r = |Σ e^{i·2πθ}| / n.
// r = 1 means perfect synchrony; r ≈ 0 means phases spread uniformly.
func OrderParameter(phases []float64) float64 {
	if len(phases) == 0 {
		return 1
	}
	var re, im float64
	for _, p := range phases {
		a := 2 * math.Pi * p / Threshold
		re += math.Cos(a)
		im += math.Sin(a)
	}
	n := float64(len(phases))
	r := math.Hypot(re, im) / n
	if r > 1 { // float rounding can overshoot the mathematical bound
		r = 1
	}
	return r
}

// PhaseSpread returns the smallest arc (as a fraction of the cycle, in
// [0, 0.5]) containing the pairwise circular distance of the extreme phases.
// Zero means all phases identical.
func PhaseSpread(phases []float64) float64 {
	if len(phases) < 2 {
		return 0
	}
	// Circular spread: 1 - largest gap between consecutive sorted phases.
	sorted := make([]float64, len(phases))
	for i, p := range phases {
		sorted[i] = math.Mod(p/Threshold, 1)
		if sorted[i] < 0 {
			sorted[i] += 1
		}
	}
	insertionSort(sorted)
	largestGap := 1 - sorted[len(sorted)-1] + sorted[0]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > largestGap {
			largestGap = g
		}
	}
	return 1 - largestGap
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// SyncDetector decides network-wide synchrony from fire events: the network
// is synchronized once every one of n devices fires within a window of
// WindowSlots, for StableRounds consecutive periods.
type SyncDetector struct {
	// N is the number of devices that must fire together.
	N int
	// WindowSlots is the maximum slot distance between the first and last
	// fire of a round for the round to count as synchronized.
	WindowSlots int64
	// StableRounds is how many consecutive synchronized rounds are needed.
	StableRounds int

	roundStart int64
	roundSeen  int
	stable     int
	active     bool
	synced     bool
	syncedAt   int64
}

// NewSyncDetector returns a detector with the given parameters; zero
// WindowSlots means same-slot synchrony, stableRounds < 1 is coerced to 1.
func NewSyncDetector(n int, windowSlots int64, stableRounds int) *SyncDetector {
	if stableRounds < 1 {
		stableRounds = 1
	}
	return &SyncDetector{N: n, WindowSlots: windowSlots, StableRounds: stableRounds}
}

// OnFire records that one device fired in the given slot. Call once per
// device per fire. Returns true once synchrony has been achieved.
func (d *SyncDetector) OnFire(slot int64) bool {
	if d.synced {
		return true
	}
	if !d.active {
		d.active = true
		d.roundStart = slot
		d.roundSeen = 1
		return false
	}
	if slot-d.roundStart <= d.WindowSlots {
		d.roundSeen++
		if d.roundSeen == d.N {
			d.stable++
			d.active = false
			if d.stable >= d.StableRounds {
				d.synced = true
				d.syncedAt = slot
			}
		}
		return d.synced
	}
	// Window exceeded: this fire starts a new round and breaks the streak.
	d.stable = 0
	d.roundStart = slot
	d.roundSeen = 1
	return false
}

// Synced reports whether synchrony has been detected, and at which slot.
func (d *SyncDetector) Synced() (bool, int64) { return d.synced, d.syncedAt }
