// Package oscillator implements the firefly synchronization model of
// Section III: Mirollo–Strogatz pulse-coupled integrate-and-fire oscillators
// with the piecewise-linear phase response curve of eq. (5), plus ensemble
// utilities (order parameter, synchrony detection) used by the protocol
// layers to decide when a network has converged.
//
// Each oscillator carries a phase θ ∈ [0, θth] that ramps linearly
// (eq. (3): dθ/dt = θth/T). When θ reaches the threshold the oscillator
// "fires" (broadcasts a PS) and resets to zero; when it hears a neighbour
// fire it jumps its phase by the PRC (eq. (4)):
//
//	θ ← min(α·θ + β, θth)   with α = e^{aε}, β = (e^{aε}−1)/(e^{a}−1)
//
// Mirollo & Strogatz prove that for α > 1, β > 0 (i.e. a > 0, ε > 0) an
// all-to-all network always converges to synchrony; the paper leans on the
// companion result of [17] that tree topologies also always synchronize.
package oscillator

import (
	"fmt"
	"math"
)

// Threshold is θth. The paper normalizes the phase threshold to 1.
const Threshold = 1.0

// Coupling holds the PRC parameters of eq. (5), derived from the dissipation
// factor a and the amplitude increment ε.
type Coupling struct {
	// Alpha is the multiplicative phase-jump factor, α = e^{aε}.
	Alpha float64
	// Beta is the additive phase-jump term, β = (e^{aε}−1)/(e^{a}−1).
	Beta float64
}

// NewCoupling computes α and β from the dissipation factor a and the pulse
// amplitude increment epsilon, exactly per eq. (5). It panics if a or
// epsilon is non-positive, because convergence requires α > 1 and β > 0.
func NewCoupling(a, epsilon float64) Coupling {
	if a <= 0 || epsilon <= 0 {
		panic(fmt.Sprintf("oscillator: coupling needs a>0, ε>0 (got a=%v, ε=%v)", a, epsilon))
	}
	alpha := math.Exp(a * epsilon)
	beta := (math.Exp(a*epsilon) - 1) / (math.Exp(a) - 1)
	return Coupling{Alpha: alpha, Beta: beta}
}

// DefaultCoupling is a moderate setting (a = 3, ε = 0.1) that satisfies the
// Mirollo–Strogatz convergence condition with phase jumps of a few percent
// of the cycle — comparable to the settings used in firefly-sync literature.
func DefaultCoupling() Coupling { return NewCoupling(3, 0.1) }

// WeakCoupling is the low-gain setting (a = 3, ε = 0.02) the protocol
// experiments use: per-pulse jumps of a fraction of a percent, so that mesh
// synchronization time depends visibly on network extent instead of
// collapsing to a single absorption cascade.
func WeakCoupling() Coupling { return NewCoupling(3, 0.02) }

// Converges reports whether the coupling satisfies the Mirollo–Strogatz
// sufficient condition α > 1, β > 0.
func (c Coupling) Converges() bool { return c.Alpha > 1 && c.Beta > 0 }

// Jump applies the PRC to a phase: min(α·θ + β, Threshold).
func (c Coupling) Jump(theta float64) float64 {
	v := c.Alpha*theta + c.Beta
	if v > Threshold {
		return Threshold
	}
	return v
}

// Oscillator is one integrate-and-fire oscillator with a slotted clock.
type Oscillator struct {
	// Phase is the current phase in [0, Threshold].
	Phase float64
	// PeriodSlots is the free-running period T expressed in simulation
	// slots; the phase ramps by Threshold/PeriodSlots per slot.
	PeriodSlots int
	// Coupling is the PRC applied on pulse reception.
	Coupling Coupling
	// Refractory, when positive, is the number of slots after a fire
	// during which incoming pulses are ignored. A short refractory period
	// is the standard cure for same-instant echo storms on radio channels
	// (cf. the Reachback Firefly Algorithm's treatment).
	Refractory int
	// JumpsPerCycle caps how many PRC jumps are applied between two of
	// this oscillator's own fires; 0 means unlimited (pure Mirollo–
	// Strogatz). Slotted radio implementations apply one adjustment per
	// frame from the superimposed received pulses (MEMFIS-style); the
	// protocol layers set 1.
	JumpsPerCycle int
	// ListenPhase is the phase the listening window opens at: pulses
	// arriving while Phase < ListenPhase neither couple nor consume the
	// jump budget. Radio firefly implementations (RFA, MEMFIS) listen in
	// a window near their own firing instant; 0 listens always.
	ListenPhase float64
	// Rate scales the phase ramp to model clock drift: an oscillator with
	// Rate 1.001 runs 1000 ppm fast. Zero is treated as 1 (nominal).
	// With drifted clocks synchrony is no longer an absorbing state — it
	// must be actively maintained by pulse coupling, which tolerates
	// drift only up to roughly β·T slots per period.
	Rate float64
	// ReachbackDelaySlots enables the Reachback Firefly Algorithm
	// discipline (Werner-Allen et al., the paper's ref [13]): a pulse's
	// PRC jump is not applied at reception but queued and applied after
	// this many slots — the radio/MAC processing delay RFA was designed
	// around. The delay must stay well below the period: queuing jumps a
	// full cycle (as a naive "apply at my next fire" reading would)
	// flips the dynamics into stable antiphase/splay locking, the classic
	// delayed-pulse-coupling result. Zero means immediate coupling.
	ReachbackDelaySlots int

	refractUntil int64 // absolute slot until which pulses are ignored
	jumpsUsed    int   // PRC jumps consumed since the last own fire
	queued       []queuedJump
	echoEpoch    int64 // adopted epoch of the latest virtual fire
	echoSet      bool  // an echo of echoEpoch is pending transmission
	// anchorVirtual marks the current cycle anchor as a virtual fire: the
	// beat was adopted from an aged pulse, not announced by a real
	// transmission. A virtual anchor is immune to retro-alignment until
	// the next real fire — without that stickiness, chains of slightly
	// older in-flight pulses walk a device's beat backward without bound
	// (each steal re-opens the window to still-older epochs), which at
	// delays near T/2 turns the echo cascade into permanent churn.
	anchorVirtual bool
	// retroFrom is the origin fire slot of a retro-aligned cycle — the last
	// fire reached by actual phase dynamics before pre-fire pulses began
	// rewriting the epoch backward. Zero while the cycle's fire stands
	// unrewritten.
	retroFrom int64

	// Lazy segment state. Between discontinuities (fires, PRC jumps,
	// matured reachback corrections, external Phase writes, step-size
	// changes) the ramp is linear, so the phase after k uninterrupted
	// steps is the closed form fl(segBase + fl(k·segStep)) — one rounding
	// for the product, one for the sum, independent of how the k steps
	// are grouped. Advance, AdvanceTo and NextFire all evaluate exactly
	// this expression, which is what makes slot-by-slot stepping and
	// event-driven fast-forwarding bit-identical.
	segBase  float64 // phase at the segment origin
	segSteps int64   // ramp steps taken since the segment origin
	segStep  float64 // per-slot increment the segment was built with
	lastMat  float64 // Phase as last materialized (detects external writes)
	lastSlot int64   // slot of the last Advance/AdvanceTo step
}

// fireEpsilon is the tolerance of the firing comparison: a phase within
// 1e-12 of Threshold counts as having reached it, absorbing the rounding of
// the ramp arithmetic (e.g. 100 × 0.01 accumulating to 1.0000000000000002).
const fireEpsilon = 1e-12

// queuedJump is a matured-delivery PRC adjustment (reachback mode).
type queuedJump struct {
	applyAt int64
	delta   float64
}

// New returns an oscillator with the given initial phase, period (slots) and
// coupling and a 1-slot refractory window.
func New(phase float64, periodSlots int, c Coupling) *Oscillator {
	if periodSlots <= 0 {
		panic("oscillator: period must be positive")
	}
	p := clampPhase(phase)
	return &Oscillator{Phase: p, PeriodSlots: periodSlots, Coupling: c, Refractory: 1,
		segBase: p, lastMat: p}
}

func clampPhase(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > Threshold {
		return Threshold
	}
	return p
}

// stepSize is the per-slot phase increment (eq. (3)), scaled by Rate.
func (o *Oscillator) stepSize() float64 {
	rate := o.Rate
	if rate == 0 {
		rate = 1
	}
	return rate * Threshold / float64(o.PeriodSlots)
}

// segPhase materializes the phase after k ramp steps from base. The
// intermediate assignment forces the product to round before the sum (no
// fused multiply-add), so every caller — Advance, AdvanceTo, NextFire —
// evaluates the identical float64 sequence.
func segPhase(base float64, k int64, step float64) float64 {
	ramp := float64(k) * step
	return base + ramp
}

// resegment starts a new linear segment at the current Phase if the phase
// was written externally (sync-word adoption, the BS timing broadcast,
// tests poking Phase) or the step size changed (Rate/PeriodSlots edits),
// and returns the step to ramp with.
func (o *Oscillator) resegment() float64 {
	step := o.stepSize()
	if o.Phase != o.lastMat || step != o.segStep {
		o.segBase = o.Phase
		o.segSteps = 0
		o.segStep = step
		o.lastMat = o.Phase
	}
	return step
}

// rebaseHere restarts the segment at the current Phase (after a PRC jump or
// a matured reachback correction).
func (o *Oscillator) rebaseHere() {
	o.segBase = o.Phase
	o.segSteps = 0
	o.lastMat = o.Phase
}

// fireReset is the threshold crossing: phase to zero, refractory window
// opens, jump budget refills. Queued corrections survive the reset: a jump
// earned just before firing still advances the next cycle, which is how a
// laggard finishes closing the last few slots.
func (o *Oscillator) fireReset(nowSlot int64) {
	o.Phase = 0
	o.segBase = 0
	o.segSteps = 0
	o.lastMat = 0
	o.refractUntil = nowSlot + int64(o.Refractory)
	o.jumpsUsed = 0
	o.anchorVirtual = false
	o.retroFrom = 0
}

// applyMatured folds queued reachback jumps whose delay has elapsed into the
// phase (in queue order) and restarts the segment at the corrected value.
func (o *Oscillator) applyMatured(nowSlot int64) {
	kept := o.queued[:0]
	applied := false
	for _, q := range o.queued {
		if q.applyAt <= nowSlot {
			o.Phase += q.delta
			applied = true
		} else {
			kept = append(kept, q)
		}
	}
	o.queued = kept
	if applied {
		o.rebaseHere()
	}
}

// Advance moves the oscillator forward one slot (eq. (3)) and reports
// whether it fires in this slot. After a fire the phase is reset to zero
// (eq. (4), first case).
func (o *Oscillator) Advance(nowSlot int64) (fired bool) {
	step := o.resegment()
	// Apply matured reachback jumps first.
	if len(o.queued) > 0 {
		o.applyMatured(nowSlot)
	}
	o.segSteps++
	o.Phase = segPhase(o.segBase, o.segSteps, step)
	o.lastSlot = nowSlot
	if o.Phase >= Threshold-fireEpsilon {
		o.fireReset(nowSlot)
		return true
	}
	o.lastMat = o.Phase
	return false
}

// AdvanceTo advances the oscillator through every slot in (lastSlot,
// target], exactly as if Advance had been called once per slot, and reports
// whether it fires at target. Slots at or before the last step are a no-op.
//
// The caller must not let AdvanceTo skip over a fire: the event engine
// consults NextFire and steps to each firing slot explicitly, so a
// threshold crossing strictly before target means the fire schedule is
// stale — a contract violation worth failing loud on, because silently
// swallowing the fire would desynchronize the run from the slot engine.
func (o *Oscillator) AdvanceTo(target int64) (fired bool) {
	if target <= o.lastSlot {
		return false
	}
	step := o.resegment()
	for o.lastSlot < target {
		// Next queued-jump maturity in range, if any. Matured jumps apply
		// at the top of their slot, before that slot's ramp, so they split
		// the linear segment.
		m, hasM := int64(0), false
		for _, q := range o.queued {
			if q.applyAt <= target && (!hasM || q.applyAt < m) {
				m, hasM = q.applyAt, true
			}
		}
		pureEnd := target
		if hasM {
			pureEnd = m - 1
		}
		if pureEnd > o.lastSlot {
			if d, fires := o.fireStep(step, pureEnd-o.lastSlot); fires {
				at := o.lastSlot + d
				if at != target {
					panic("oscillator: AdvanceTo skipped a fire; step to NextFire first")
				}
				o.segSteps += d
				o.lastSlot = at
				o.fireReset(at)
				return true
			}
			o.segSteps += pureEnd - o.lastSlot
			o.Phase = segPhase(o.segBase, o.segSteps, step)
			o.lastMat = o.Phase
			o.lastSlot = pureEnd
		}
		if hasM {
			// Slot m itself: corrections first, then one ramp step —
			// the exact order Advance uses.
			o.applyMatured(m)
			o.segSteps++
			o.Phase = segPhase(o.segBase, o.segSteps, step)
			o.lastSlot = m
			if o.Phase >= Threshold-fireEpsilon {
				if m != target {
					panic("oscillator: AdvanceTo skipped a fire; step to NextFire first")
				}
				o.fireReset(m)
				return true
			}
			o.lastMat = o.Phase
		}
	}
	return false
}

// fireStep returns the smallest d ∈ [1, span] whose materialized phase on
// the current segment meets the firing threshold, or ok=false if the ramp
// stays below it for the whole span. The analytic guess ⌈(θth−base)/step⌉
// lands within an ulp or two of the answer; the monotone adjustment loops
// settle it using the exact comparison Advance evaluates.
func (o *Oscillator) fireStep(step float64, span int64) (d int64, ok bool) {
	if step <= 0 {
		return 0, false
	}
	fireAt := Threshold - fireEpsilon
	lo, hi := o.segSteps+1, o.segSteps+span
	guess := lo
	if r := (fireAt - o.segBase) / step; r > float64(hi) {
		guess = hi + 1
	} else if r > float64(lo) {
		guess = int64(math.Ceil(r))
	}
	for guess > lo && segPhase(o.segBase, guess-1, step) >= fireAt {
		guess--
	}
	for guess <= hi && segPhase(o.segBase, guess, step) < fireAt {
		guess++
	}
	if guess > hi {
		return 0, false
	}
	return guess - o.segSteps, true
}

// NextFire predicts the absolute slot of the oscillator's next fire under
// free running — no further pulses, queued reachback corrections maturing
// on schedule — or ok=false if it never reaches the threshold (non-positive
// effective step, or a horizon beyond any representable run). It evaluates
// the same segment expression Advance does, so the prediction is exact: the
// event engine schedules it, fast-forwards, and the fire happens on that
// slot, bit for bit.
func (o *Oscillator) NextFire() (slot int64, ok bool) {
	step := o.resegment()
	base, k, last := o.segBase, o.segSteps, o.lastSlot
	phase := o.Phase
	var pending []queuedJump
	if len(o.queued) > 0 {
		pending = append(pending, o.queued...)
	}
	fireAt := Threshold - fireEpsilon
	for {
		m, hasM := int64(0), false
		for _, q := range pending {
			if !hasM || q.applyAt < m {
				m, hasM = q.applyAt, true
			}
		}
		if r := (fireAt - base) / step; step > 0 && r <= 1e15 {
			// Fire on the pure ramp strictly before the next maturity?
			lo := k + 1
			guess := lo
			if r > float64(lo) {
				guess = int64(math.Ceil(r))
			}
			for guess > lo && segPhase(base, guess-1, step) >= fireAt {
				guess--
			}
			for segPhase(base, guess, step) < fireAt {
				guess++
			}
			if at := last + (guess - k); !hasM || at < m {
				return at, true
			}
		}
		if !hasM {
			// Non-positive step, or a horizon beyond any representable
			// run, with no queued correction left to change that.
			return 0, false
		}
		// Ramp to the end of slot m−1, apply the matured corrections in
		// queue order (what applyMatured does at the top of slot m), and
		// restart the segment there.
		phase = segPhase(base, k+(m-1-last), step)
		var kept []queuedJump
		for _, q := range pending {
			if q.applyAt <= m {
				phase += q.delta
			} else {
				kept = append(kept, q)
			}
		}
		pending = kept
		base, k, last = phase, 0, m-1
	}
}

// Rebase pins an externally assigned Phase as the oscillator's state at the
// end of slot nowSlot without ramping through the slots in between. The
// event engine's protocol hooks call it after overwriting Phase (sync-word
// adoption, the BS timing broadcast) on a lazily advanced oscillator; the
// slot engine never needs it because Advance re-detects external writes
// every slot.
func (o *Oscillator) Rebase(nowSlot int64) {
	o.segBase = o.Phase
	o.segSteps = 0
	o.segStep = o.stepSize()
	o.lastMat = o.Phase
	o.lastSlot = nowSlot
}

// LastSlot returns the slot of the oscillator's most recent Advance,
// AdvanceTo or Rebase — how far its lazily materialized state has caught up.
func (o *Oscillator) LastSlot() int64 { return o.lastSlot }

// OnPulse applies the coupling jump for one received pulse (eq. (4), second
// case). If the jump pushes the phase to the threshold the oscillator fires
// immediately — phase resets to zero and OnPulse returns true. This is the
// Mirollo–Strogatz "absorption": the receiver fires in the same instant as
// the sender and the two are synchronized from then on. The refractory
// window (which opens on every fire) bounds each oscillator to at most one
// fire per slot, so same-slot cascades always terminate. Pulses arriving
// inside the refractory window are ignored and return false.
func (o *Oscillator) OnPulse(nowSlot int64) (fired bool) {
	return o.OnPulseSent(nowSlot, nowSlot)
}

// OnPulseSent is OnPulse for a pulse transmitted at sendSlot and delivered
// at nowSlot (equal without a message adversary, which makes this a strict
// generalization). Two rules remove the arrival time from the dynamics:
//
//   - Refractoriness is judged at the send slot: a pulse whose sender fired
//     in the same round the receiver already fired in is answered no matter
//     how late the adversary delivers it — its epoch, not its arrival time,
//     decides. Once the network fires in one slot, every delayed echo of
//     that common round lands inside each receiver's (send-slot) refractory
//     window and perturbs nothing, exactly as same-slot echoes do in
//     lockstep.
//
//   - The PRC is age-compensated: the jump is evaluated at the phase the
//     receiver held when the pulse was sent (back-projected down the ramp)
//     and the flight window is replayed on top of the corrected value.
//     Naively jumping the delivery-slot phase instead turns bounded delay
//     into the textbook delayed-excitatory-coupling system, whose stable
//     attractor is a splay state, not synchrony.
//
// With both rules the phase deltas each pulse produces match the zero-delay
// dynamics (up to pulses received during the flight window), so convergence
// carries over from the lockstep analysis.
func (o *Oscillator) OnPulseSent(sendSlot, nowSlot int64) (fired bool) {
	if sendSlot < o.refractUntil {
		// lastFire is the slot the receiver's current cycle started in. A
		// pulse sent at or after it is a genuine refractory rejection — in
		// the synchronized state every echo of the common round lands
		// here. A pulse sent strictly before it is different: lockstep
		// would have delivered it before the receiver fired, so the fire
		// the receiver already performed happened at the wrong slot and
		// is retro-aligned toward the sender's beat.
		lastFire := o.refractUntil - int64(o.Refractory)
		if sendSlot >= lastFire {
			return false
		}
		return o.onPreFirePulse(lastFire, sendSlot, nowSlot)
	}
	if sendSlot != nowSlot {
		return o.onAgedPulse(sendSlot, nowSlot)
	}
	if o.Phase < o.ListenPhase {
		return false
	}
	if o.JumpsPerCycle > 0 && o.jumpsUsed >= o.JumpsPerCycle {
		return false
	}
	o.jumpsUsed++
	if o.ReachbackDelaySlots > 0 {
		// Queue the jump for the processing delay (RFA discipline);
		// no same-slot absorption cascade is possible.
		o.queued = append(o.queued, queuedJump{
			applyAt: nowSlot + int64(o.ReachbackDelaySlots),
			delta:   o.Coupling.Jump(o.Phase) - o.Phase,
		})
		return false
	}
	o.Phase = o.Coupling.Jump(o.Phase)
	if o.Phase >= Threshold-fireEpsilon {
		o.fireReset(nowSlot)
		return true
	}
	o.rebaseHere()
	return false
}

// onAgedPulse applies a pulse that spent age = nowSlot−sendSlot slots in
// flight. It reconstructs what the zero-delay dynamics would have done: the
// PRC jump is evaluated at the receiver's back-projected send-slot phase,
// and the flight window is replayed on the corrected trajectory. If that
// trajectory crosses the threshold, the receiver "fired" at a slot that has
// already passed — it cannot transmit into the past, so it performs the
// fire silently (phase reset, refractory window and jump budget anchored at
// the virtual fire slot) and resumes the ramp from there. The virtual fire
// is what makes absorption align rhythms instead of locking the receiver a
// constant age off the sender's beat, and the send-slot refractory it opens
// rejects every further echo of the same round.
func (o *Oscillator) onAgedPulse(sendSlot, nowSlot int64) bool {
	step := o.stepSize()
	// Back-projection is exact only across pure ramp slots: every jump
	// applied since sendSlot is baked into Phase and cannot be peeled off
	// linearly. Clamp the reach-back to the current segment — a pulse
	// older than the last discontinuity is evaluated at the segment
	// origin, matching lockstep's sequential application once the true
	// interleaving is unrecoverable. Without the clamp, dense coupling
	// (FST all-to-all) inflates phaseThen past the capture zone and the
	// population beat-hops forever instead of contracting.
	reach := nowSlot - sendSlot
	phaseThen := o.Phase - float64(reach)*step
	if phaseThen < 0 {
		phaseThen = 0
	}
	if phaseThen < o.ListenPhase {
		return false
	}
	if o.JumpsPerCycle > 0 && o.jumpsUsed >= o.JumpsPerCycle {
		return false
	}
	o.jumpsUsed++
	if o.ReachbackDelaySlots > 0 {
		o.queued = append(o.queued, queuedJump{
			applyAt: nowSlot + int64(o.ReachbackDelaySlots),
			delta:   o.Coupling.Jump(phaseThen) - phaseThen,
		})
		return false
	}
	jumped := o.Coupling.Jump(phaseThen)
	// First slot in the replayed window where the corrected trajectory
	// reaches the threshold; fireD == 0 is absorption at the window base
	// itself, fireD < 0 means no crossing within the flight window. The
	// window base is sendSlot when the whole flight was pure ramp, or the
	// segment origin when the clamp shortened the reach.
	base := nowSlot - reach
	fireD := int64(-1)
	if jumped >= Threshold-fireEpsilon {
		fireD = 0
	} else {
		for d := int64(1); d <= reach; d++ {
			if segPhase(jumped, d, step) >= Threshold-fireEpsilon {
				fireD = d
				break
			}
		}
	}
	if fireD < 0 {
		o.Phase = segPhase(jumped, reach, step)
		o.rebaseHere()
		return false
	}
	// The absorption replaces the fire the receiver never performed this
	// round, so it is announced as an echo — that is what lets absorption
	// cascade under delay the way same-slot avalanches do in lockstep.
	o.virtualFire(base+fireD, nowSlot, step, true)
	return false
}

// virtualFire performs a fire at a slot that has already passed: phase
// reset, refractory window and jump budget are anchored at the (past) fire
// slot and the ramp is replayed forward to nowSlot. The fire it would have
// announced belongs to a slot no broadcast can reach any more, so instead
// the adopted epoch is recorded for the engine to transmit as an echo — a
// pulse sent now but stamped with the epoch slot — which is what lets
// absorption cascade under delay the way same-slot avalanches do in
// lockstep.
func (o *Oscillator) virtualFire(at, nowSlot int64, step float64, announce bool) {
	o.fireReset(at)
	o.segStep = step
	o.segSteps = nowSlot - at
	o.Phase = segPhase(0, o.segSteps, step)
	o.lastMat = o.Phase
	o.anchorVirtual = true
	if announce {
		o.echoEpoch = at
		o.echoSet = true
	}
}

// TakeEcho consumes a pending echo request: the epoch slot of a virtual
// fire the engine should relay on the oscillator's behalf. Virtual fires
// only occur for aged pulses, so without a message adversary this never
// reports true.
func (o *Oscillator) TakeEcho() (epoch int64, ok bool) {
	if !o.echoSet {
		return 0, false
	}
	o.echoSet = false
	return o.echoEpoch, true
}

// onPreFirePulse applies a pulse sent strictly before the receiver's most
// recent fire at lastFire and delivered after it. In lockstep the pulse
// would have arrived while the receiver was still ramping toward that fire
// — the jump would have advanced it and the fire would have happened
// earlier, at or shortly after the send slot (same-slot absorption when the
// jump crosses the threshold). The broadcast at lastFire cannot be undone,
// but the rhythm can: the receiver recomputes where its fire would have
// landed on the corrected trajectory and virtually re-fires there, pulling
// its beat toward the sender's. This is what lets a cluster tighter than
// the delay bound finish collapsing: without it, every intra-cluster pulse
// arrives after the receiver's own fire and dies in the refractory window,
// freezing the cluster at its current width.
func (o *Oscillator) onPreFirePulse(lastFire, sendSlot, nowSlot int64) bool {
	step := o.stepSize()
	// The pulse is evaluated against the origin trajectory — the ramp into
	// the last fire this cycle reached by actual phase dynamics — not
	// against the current (possibly already rewritten) epoch. Measuring
	// from the current epoch lets rewrites chain: each one re-opens the
	// window one hop further back, epochs walk backward without bound, and
	// members of the same cluster scatter because the walk depends on
	// per-receiver arrival order. Anchored at the origin, every pulse
	// proposes the fire slot lockstep would have produced — the jump at
	// the send-slot phase plus the remaining climb — and the cycle adopts
	// the minimum proposal. A minimum over a set is independent of
	// delivery order and duplication, so every member of a cluster that
	// hears the same pulses lands on the same slot.
	origin := lastFire
	if o.retroFrom != 0 {
		origin = o.retroFrom
	}
	if sendSlot >= origin {
		// Between the adopted epoch and the origin: already covered by
		// the rewrite that adopted the current epoch.
		return false
	}
	// The receiver reached the threshold at origin, so its phase when the
	// pulse was sent is the threshold back-projected down the ramp.
	phaseThen := Threshold - float64(origin-sendSlot)*step
	if phaseThen < 0 {
		phaseThen = 0
	}
	if phaseThen < o.ListenPhase {
		return false
	}
	if o.JumpsPerCycle > 0 && o.jumpsUsed >= o.JumpsPerCycle {
		return false
	}
	jumped := o.Coupling.Jump(phaseThen)
	newFire := sendSlot
	if jumped < Threshold-fireEpsilon {
		// Sub-threshold: the fire advances by the jump but still needs
		// the remaining climb, in the same segment arithmetic a live
		// ramp would use.
		d := int64(1)
		for ; d < lastFire-sendSlot; d++ {
			if segPhase(jumped, d, step) >= Threshold-fireEpsilon {
				break
			}
		}
		newFire = sendSlot + d
	}
	if newFire >= lastFire {
		// The proposal does not precede the adopted epoch: moot.
		return false
	}
	// The adoption is echoed: a rewrite that stays private cannot spread.
	// Each device's window only covers the pulses it directly decodes, so
	// without re-announcing adopted epochs every device settles on the
	// minimum over its own neighborhood and near-miss beats a few slots
	// apart persist forever. Echoed, the minimum propagates transitively
	// across the hearing graph — each cycle extends the reach one hop,
	// exactly like the same-slot avalanche does in lockstep.
	o.virtualFire(newFire, nowSlot, step, true)
	o.retroFrom = origin
	return false
}

// QueuedJumps returns the number of reachback PRC corrections queued but not
// yet matured. The sharded slot engine compares it (with Phase) around an
// OnPulse to decide whether the pulse changed the trajectory — a refractory
// or listen-window rejection leaves both untouched, and skipping the
// next-fire recompute for those keeps the dirty set proportional to actual
// couplings instead of deliveries.
func (o *Oscillator) QueuedJumps() int { return len(o.queued) }

// SlotsToFire returns how many Advance calls remain until the oscillator
// fires from its current phase, assuming no further pulses. It is exact —
// the prediction comes from the same segment arithmetic Advance steps with.
// A non-positive effective ramp never fires; that reports math.MaxInt.
func (o *Oscillator) SlotsToFire() int {
	at, ok := o.NextFire()
	if !ok {
		return math.MaxInt
	}
	return int(at - o.lastSlot)
}

// OrderParameter returns the Kuramoto order parameter r ∈ [0,1] of a set of
// phases (interpreted as fractions of a cycle): r = |Σ e^{i·2πθ}| / n.
// r = 1 means perfect synchrony; r ≈ 0 means phases spread uniformly.
func OrderParameter(phases []float64) float64 {
	if len(phases) == 0 {
		return 1
	}
	var re, im float64
	for _, p := range phases {
		a := 2 * math.Pi * p / Threshold
		re += math.Cos(a)
		im += math.Sin(a)
	}
	n := float64(len(phases))
	r := math.Hypot(re, im) / n
	if r > 1 { // float rounding can overshoot the mathematical bound
		r = 1
	}
	return r
}

// PhaseSpread returns the smallest arc (as a fraction of the cycle, in
// [0, 0.5]) containing the pairwise circular distance of the extreme phases.
// Zero means all phases identical.
func PhaseSpread(phases []float64) float64 {
	if len(phases) < 2 {
		return 0
	}
	// Circular spread: 1 - largest gap between consecutive sorted phases.
	sorted := make([]float64, len(phases))
	for i, p := range phases {
		sorted[i] = math.Mod(p/Threshold, 1)
		if sorted[i] < 0 {
			sorted[i] += 1
		}
	}
	insertionSort(sorted)
	largestGap := 1 - sorted[len(sorted)-1] + sorted[0]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > largestGap {
			largestGap = g
		}
	}
	return 1 - largestGap
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// SyncDetector decides network-wide synchrony from fire events: the network
// is synchronized once every one of n devices fires within a window of
// WindowSlots, for StableRounds consecutive periods.
type SyncDetector struct {
	// N is the number of devices that must fire together.
	N int
	// WindowSlots is the maximum slot distance between the first and last
	// fire of a round for the round to count as synchronized.
	WindowSlots int64
	// StableRounds is how many consecutive synchronized rounds are needed.
	StableRounds int

	roundStart int64
	roundSeen  int
	stable     int
	active     bool
	synced     bool
	syncedAt   int64
}

// NewSyncDetector returns a detector with the given parameters; zero
// WindowSlots means same-slot synchrony, stableRounds < 1 is coerced to 1.
func NewSyncDetector(n int, windowSlots int64, stableRounds int) *SyncDetector {
	if stableRounds < 1 {
		stableRounds = 1
	}
	return &SyncDetector{N: n, WindowSlots: windowSlots, StableRounds: stableRounds}
}

// OnFire records that one device fired in the given slot. Call once per
// device per fire. Returns true once synchrony has been achieved.
func (d *SyncDetector) OnFire(slot int64) bool {
	if d.synced {
		return true
	}
	if !d.active {
		d.active = true
		d.roundStart = slot
		d.roundSeen = 1
		return false
	}
	if slot-d.roundStart <= d.WindowSlots {
		d.roundSeen++
		if d.roundSeen == d.N {
			d.stable++
			d.active = false
			if d.stable >= d.StableRounds {
				d.synced = true
				d.syncedAt = slot
			}
		}
		return d.synced
	}
	// Window exceeded: this fire starts a new round and breaks the streak.
	d.stable = 0
	d.roundStart = slot
	d.roundSeen = 1
	return false
}

// Synced reports whether synchrony has been detected, and at which slot.
func (d *SyncDetector) Synced() (bool, int64) { return d.synced, d.syncedAt }
