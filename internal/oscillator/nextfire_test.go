package oscillator

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the lazy-advancement API: NextFire and AdvanceTo must
// agree with slot-by-slot Advance bit for bit — same firing slot, same
// materialized phase at every step. The event engine's correctness rests
// entirely on this equivalence.

// nextFireBySteps is the oracle: call Advance one slot at a time on a
// behavioral twin and report the slot of the first fire (or ok=false within
// the horizon).
func nextFireBySteps(o *Oscillator, horizon int64) (int64, bool) {
	for s := o.lastSlot + 1; s <= o.lastSlot+horizon; {
		if o.Advance(s) {
			return s, true
		}
		s++
	}
	return 0, false
}

// twin builds two identically configured oscillators so one can run the
// analytic path and the other the slot-by-slot oracle.
func twin(phase float64, period int, mutate func(*Oscillator)) (*Oscillator, *Oscillator) {
	a := New(phase, period, DefaultCoupling())
	b := New(phase, period, DefaultCoupling())
	if mutate != nil {
		mutate(a)
		mutate(b)
	}
	return a, b
}

func TestNextFireMatchesAdvanceSweep(t *testing.T) {
	rates := []float64{0, 1, 0.5, 2, 0.9997, 1.0003, 1.000001}
	periods := []int{100, 97, 64, 2}
	phases := []float64{0, 1e-15, 0.1, 0.5, 0.99, 0.999999999999, Threshold}
	for _, rate := range rates {
		for _, period := range periods {
			for _, phase := range phases {
				a, b := twin(phase, period, func(o *Oscillator) { o.Rate = rate })
				at, ok := a.NextFire()
				if !ok {
					t.Fatalf("rate=%v period=%d phase=%v: NextFire reported never", rate, period, phase)
				}
				want, wok := nextFireBySteps(b, int64(4*period)+4)
				if !wok {
					t.Fatalf("rate=%v period=%d phase=%v: oracle never fired", rate, period, phase)
				}
				if at != want {
					t.Errorf("rate=%v period=%d phase=%v: NextFire=%d, Advance fired at %d",
						rate, period, phase, at, want)
				}
				// The prediction must also be exact for the analytic path:
				// advancing a to one slot before must not fire, and
				// advancing to the slot must.
				if at > a.lastSlot+1 && a.AdvanceTo(at-1) {
					t.Errorf("rate=%v period=%d phase=%v: fired before the predicted slot", rate, period, phase)
				}
				if !a.AdvanceTo(at) {
					t.Errorf("rate=%v period=%d phase=%v: no fire at the predicted slot", rate, period, phase)
				}
			}
		}
	}
}

// Randomized long-run equivalence: interleave ramping, PRC jumps and
// external writes, and check that AdvanceTo lands on exactly the phase the
// slot-by-slot oracle computes, fire for fire.
func TestAdvanceToMatchesAdvanceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		period := 2 + rng.Intn(150)
		phase := rng.Float64()
		rate := 1.0
		if trial%3 == 1 {
			rate = 0.5 + rng.Float64()
		}
		a, b := twin(phase, period, func(o *Oscillator) { o.Rate = rate })
		for ev := 0; ev < 20; ev++ {
			// Fast-forward a random span with the analytic path, stepping
			// fires explicitly like the event engine does.
			span := int64(1 + rng.Intn(2*period))
			target := a.lastSlot + span
			for a.lastSlot < target {
				stop := target
				if at, ok := a.NextFire(); ok && at < stop {
					stop = at
				}
				aFired := a.AdvanceTo(stop)
				var bFired bool
				for b.lastSlot < stop {
					bFired = b.Advance(b.lastSlot + 1)
				}
				if aFired != bFired {
					t.Fatalf("trial %d: fire mismatch at slot %d: AdvanceTo=%v Advance=%v",
						trial, stop, aFired, bFired)
				}
				if a.Phase != b.Phase {
					t.Fatalf("trial %d: phase mismatch at slot %d: AdvanceTo=%v Advance=%v",
						trial, stop, a.Phase, b.Phase)
				}
			}
			// Occasionally hit both with the same discontinuity.
			switch rng.Intn(3) {
			case 0:
				a.OnPulse(a.lastSlot)
				b.OnPulse(b.lastSlot)
			case 1:
				p := rng.Float64()
				a.Phase = p
				a.Rebase(a.lastSlot)
				b.Phase = p // the slot path re-detects the write on Advance
			}
		}
	}
}

// A phase already at (or within fireEpsilon of) the threshold fires on the
// very next ramp step.
func TestNextFireAtThresholdBoundary(t *testing.T) {
	for _, phase := range []float64{Threshold, Threshold - 1e-13, Threshold - fireEpsilon} {
		a, b := twin(phase, 100, nil)
		at, ok := a.NextFire()
		if !ok || at != 1 {
			t.Errorf("phase=%v: NextFire=(%d,%v), want slot 1", phase, at, ok)
		}
		if !b.Advance(1) {
			t.Errorf("phase=%v: Advance(1) did not fire", phase)
		}
	}
}

// Refractory and the listen window gate OnPulse only — the free-running
// prediction must ignore them entirely.
func TestNextFireUnaffectedByPulseGates(t *testing.T) {
	a, b := twin(0.3, 100, func(o *Oscillator) {
		o.Refractory = 25
		o.ListenPhase = 0.9
		o.JumpsPerCycle = 1
	})
	at, ok := a.NextFire()
	want, wok := nextFireBySteps(b, 300)
	if !ok || !wok || at != want {
		t.Fatalf("gated oscillator: NextFire=(%d,%v), oracle=(%d,%v)", at, ok, want, wok)
	}
	// A pulse inside the refractory window (or below the listen phase) is
	// ignored and must not move the prediction.
	a.AdvanceTo(at) // fire: refractory opens
	b.AdvanceTo(at)
	a.OnPulse(a.lastSlot + 1)
	b.OnPulse(b.lastSlot + 1)
	at2, _ := a.NextFire()
	want2, _ := nextFireBySteps(b, 300)
	if at2 != want2 {
		t.Errorf("post-refractory-pulse: NextFire=%d, oracle=%d", at2, want2)
	}
	if at2 != at+100 {
		t.Errorf("refractory-ignored pulse moved the schedule: %d, want %d", at2, at+100)
	}
}

// A coupled jump shortens the schedule; NextFire must track the rebased
// segment exactly.
func TestNextFireAfterPulseJump(t *testing.T) {
	a, b := twin(0.7, 100, nil)
	a.AdvanceTo(10)
	for s := int64(1); s <= 10; s++ {
		b.Advance(s)
	}
	a.OnPulse(10)
	b.OnPulse(10)
	at, ok := a.NextFire()
	want, wok := nextFireBySteps(b, 300)
	if !ok || !wok || at != want {
		t.Fatalf("post-jump: NextFire=(%d,%v), oracle=(%d,%v)", at, ok, want, wok)
	}
}

// Reachback mode: queued corrections mature mid-flight and split the ramp;
// the prediction must apply them at exactly the slots Advance does.
func TestNextFireWithReachbackQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		period := 50 + rng.Intn(100)
		delay := 1 + rng.Intn(period/2)
		phase := rng.Float64()
		a, b := twin(phase, period, func(o *Oscillator) {
			o.ReachbackDelaySlots = delay
			o.Refractory = 1
		})
		// Queue a few pulses at staggered slots on both twins. The analytic
		// twin steps to each predicted fire first — the AdvanceTo contract
		// the event engine honours — because a maturing correction can pull
		// a fire into the span.
		pulses := 1 + rng.Intn(3)
		for p := 0; p < pulses; p++ {
			target := a.lastSlot + int64(1+rng.Intn(5))
			for a.lastSlot < target {
				stop := target
				if at, ok := a.NextFire(); ok && at < stop {
					stop = at
				}
				a.AdvanceTo(stop)
			}
			for b.lastSlot < a.lastSlot {
				b.Advance(b.lastSlot + 1)
			}
			if a.Phase != b.Phase {
				t.Fatalf("trial %d: phase mismatch before pulse %d: %v vs %v", trial, p, a.Phase, b.Phase)
			}
			a.OnPulse(a.lastSlot)
			b.OnPulse(b.lastSlot)
		}
		at, ok := a.NextFire()
		want, wok := nextFireBySteps(b, int64(4*period)+4)
		if ok != wok || (ok && at != want) {
			t.Fatalf("trial %d (period=%d delay=%d): NextFire=(%d,%v), oracle=(%d,%v)",
				trial, period, delay, at, ok, want, wok)
		}
		if ok {
			if !a.AdvanceTo(at) {
				t.Fatalf("trial %d: predicted fire at %d did not happen", trial, at)
			}
			if a.Phase != b.Phase {
				t.Fatalf("trial %d: post-fire phase mismatch: %v vs %v", trial, a.Phase, b.Phase)
			}
		}
	}
}

// A stopped clock (Rate so small the horizon is unrepresentable) reports
// "never" instead of looping, and SlotsToFire surfaces it as MaxInt.
func TestNextFireNeverFires(t *testing.T) {
	o := New(0, 100, DefaultCoupling())
	o.Rate = 1e-18
	if at, ok := o.NextFire(); ok {
		t.Errorf("stalled oscillator predicted a fire at %d", at)
	}
	if got := o.SlotsToFire(); got != math.MaxInt {
		t.Errorf("SlotsToFire = %d, want MaxInt", got)
	}
}
