package oscillator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewCouplingMatchesEq5(t *testing.T) {
	a, eps := 3.0, 0.1
	c := NewCoupling(a, eps)
	wantAlpha := math.Exp(a * eps)
	wantBeta := (math.Exp(a*eps) - 1) / (math.Exp(a) - 1)
	if math.Abs(c.Alpha-wantAlpha) > 1e-12 {
		t.Errorf("alpha = %v, want %v", c.Alpha, wantAlpha)
	}
	if math.Abs(c.Beta-wantBeta) > 1e-12 {
		t.Errorf("beta = %v, want %v", c.Beta, wantBeta)
	}
	if !c.Converges() {
		t.Error("a>0, ε>0 must satisfy the convergence condition")
	}
}

func TestNewCouplingPanicsOnInvalid(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {3, 0}, {-1, 0.1}, {3, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCoupling(%v,%v) should panic", bad[0], bad[1])
				}
			}()
			NewCoupling(bad[0], bad[1])
		}()
	}
}

func TestCouplingConvergenceConditionProperty(t *testing.T) {
	// For any a>0, ε>0: α>1 and β>0 (the Mirollo–Strogatz condition).
	f := func(aRaw, eRaw float64) bool {
		a := 0.01 + math.Abs(math.Mod(aRaw, 10))
		e := 0.01 + math.Abs(math.Mod(eRaw, 2))
		return NewCoupling(a, e).Converges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJumpClampsAtThreshold(t *testing.T) {
	c := DefaultCoupling()
	if got := c.Jump(0.99); got != Threshold {
		t.Errorf("Jump(0.99) = %v, want clamp to %v", got, Threshold)
	}
	if got := c.Jump(0); math.Abs(got-c.Beta) > 1e-12 {
		t.Errorf("Jump(0) = %v, want β=%v", got, c.Beta)
	}
}

func TestJumpMonotoneProperty(t *testing.T) {
	c := DefaultCoupling()
	f := func(x, y float64) bool {
		x = math.Abs(math.Mod(x, 1))
		y = math.Abs(math.Mod(y, 1))
		if x > y {
			x, y = y, x
		}
		return c.Jump(x) <= c.Jump(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJumpAdvancesPhaseProperty(t *testing.T) {
	// With α>1, β>0 a pulse always advances phase (never retards).
	c := DefaultCoupling()
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1))
		return c.Jump(x) >= x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOscillatorFreeRunPeriod(t *testing.T) {
	o := New(0, 100, DefaultCoupling())
	fires := 0
	var lastFire int64
	var gaps []int64
	for slot := int64(1); slot <= 1000; slot++ {
		if o.Advance(slot) {
			if fires > 0 {
				gaps = append(gaps, slot-lastFire)
			}
			lastFire = slot
			fires++
		}
	}
	if fires != 10 {
		t.Fatalf("free-running oscillator fired %d times in 1000 slots, want 10", fires)
	}
	for _, g := range gaps {
		if g != 100 {
			t.Fatalf("fire gap %d, want 100", g)
		}
	}
}

func TestNewPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("period 0 should panic")
		}
	}()
	New(0, 0, DefaultCoupling())
}

func TestNewClampsPhase(t *testing.T) {
	if o := New(-0.5, 10, DefaultCoupling()); o.Phase != 0 {
		t.Errorf("negative phase clamped to %v", o.Phase)
	}
	if o := New(2, 10, DefaultCoupling()); o.Phase != Threshold {
		t.Errorf("excess phase clamped to %v", o.Phase)
	}
}

func TestOnPulseRefractory(t *testing.T) {
	o := New(0, 100, DefaultCoupling())
	// Fire at slot 50 (walk the phase there).
	var fireSlot int64
	for slot := int64(1); ; slot++ {
		if o.Advance(slot) {
			fireSlot = slot
			break
		}
	}
	// A pulse in the same slot (inside the refractory window) is ignored.
	phase := o.Phase
	if o.OnPulse(fireSlot) {
		t.Error("refractory pulse should not reach threshold")
	}
	if o.Phase != phase {
		t.Error("refractory pulse should not change phase")
	}
	// After the window, pulses apply again.
	o.Advance(fireSlot + 1)
	before := o.Phase
	o.OnPulse(fireSlot + 1)
	if o.Phase <= before {
		t.Error("post-refractory pulse should advance phase")
	}
}

func TestOnPulseAbsorptionFiresImmediately(t *testing.T) {
	o := New(0.95, 100, NewCoupling(3, 0.5)) // big jump
	if !o.OnPulse(10) {
		t.Fatal("pulse from phase 0.95 with strong coupling should fire (absorption)")
	}
	if o.Phase != 0 {
		t.Errorf("phase after absorption fire = %v, want 0", o.Phase)
	}
	// The fire opened a refractory window: a second same-slot pulse is a no-op.
	if o.OnPulse(10) {
		t.Error("second pulse in the same slot should be ignored")
	}
}

func TestSlotsToFire(t *testing.T) {
	o := New(0, 100, DefaultCoupling())
	if got := o.SlotsToFire(); got != 100 {
		t.Errorf("SlotsToFire from 0 = %d, want 100", got)
	}
	o.Phase = 0.995
	if got := o.SlotsToFire(); got != 1 {
		t.Errorf("SlotsToFire from 0.995 = %d, want 1", got)
	}
	// Walk and verify the prediction.
	o2 := New(0.3, 50, DefaultCoupling())
	predict := o2.SlotsToFire()
	steps := 0
	for slot := int64(1); ; slot++ {
		steps++
		if o2.Advance(slot) {
			break
		}
	}
	if steps != predict {
		t.Errorf("predicted %d slots to fire, took %d", predict, steps)
	}
}

func TestOrderParameter(t *testing.T) {
	if got := OrderParameter([]float64{0.3, 0.3, 0.3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical phases r = %v, want 1", got)
	}
	// Two opposite phases cancel.
	if got := OrderParameter([]float64{0, 0.5}); got > 1e-9 {
		t.Errorf("antiphase r = %v, want ~0", got)
	}
	// Empty input is defined as 1 (vacuously synchronized).
	if got := OrderParameter(nil); got != 1 {
		t.Errorf("empty r = %v, want 1", got)
	}
}

func TestOrderParameterRangeProperty(t *testing.T) {
	s := xrand.NewStream(5)
	for trial := 0; trial < 100; trial++ {
		n := 2 + s.Intn(50)
		phases := make([]float64, n)
		for i := range phases {
			phases[i] = s.Float64()
		}
		r := OrderParameter(phases)
		if r < 0 || r > 1+1e-12 {
			t.Fatalf("r = %v out of [0,1]", r)
		}
	}
}

func TestPhaseSpread(t *testing.T) {
	if got := PhaseSpread([]float64{0.2, 0.2}); got != 0 {
		t.Errorf("identical spread = %v, want 0", got)
	}
	if got := PhaseSpread([]float64{0.1}); got != 0 {
		t.Errorf("single-phase spread = %v, want 0", got)
	}
	// 0.98 and 0.02 are 0.04 apart on the circle.
	if got := PhaseSpread([]float64{0.98, 0.02}); math.Abs(got-0.04) > 1e-9 {
		t.Errorf("wraparound spread = %v, want 0.04", got)
	}
	if got := PhaseSpread([]float64{0, 0.25, 0.5, 0.75}); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("uniform spread = %v, want 0.75", got)
	}
}

func TestSyncDetector(t *testing.T) {
	d := NewSyncDetector(3, 0, 2)
	// Round 1: all three fire in slot 100.
	d.OnFire(100)
	d.OnFire(100)
	if d.OnFire(100) {
		t.Error("one stable round should not be enough with StableRounds=2")
	}
	// Round 2: all three in slot 200 → synced.
	d.OnFire(200)
	d.OnFire(200)
	if !d.OnFire(200) {
		t.Error("two stable rounds should trigger sync")
	}
	ok, at := d.Synced()
	if !ok || at != 200 {
		t.Errorf("Synced() = (%v,%v), want (true,200)", ok, at)
	}
	// Further fires keep reporting synced.
	if !d.OnFire(300) {
		t.Error("detector should stay synced")
	}
}

func TestSyncDetectorBrokenStreak(t *testing.T) {
	d := NewSyncDetector(2, 0, 2)
	d.OnFire(10)
	d.OnFire(10) // round 1 complete
	d.OnFire(20) // round 2 starts
	d.OnFire(25) // outside window: streak broken, new round starts at 25
	d.OnFire(25) // round complete (stable=1)
	d.OnFire(30)
	if !d.OnFire(30) {
		t.Error("two clean rounds after the break should sync")
	}
}

func TestSyncDetectorWindow(t *testing.T) {
	d := NewSyncDetector(2, 3, 1)
	d.OnFire(10)
	if !d.OnFire(13) {
		t.Error("fires 3 slots apart should count with WindowSlots=3")
	}
}

func TestEnsembleMeshConvergence(t *testing.T) {
	// The Mirollo–Strogatz theorem: a fully meshed system with α>1, β>0
	// converges from (almost) any initial condition.
	s := xrand.NewStream(42)
	for trial := 0; trial < 5; trial++ {
		phases := make([]float64, 20)
		for i := range phases {
			phases[i] = s.Float64()
		}
		e := NewEnsemble(phases, 100, DefaultCoupling(), nil)
		at, ok := e.RunUntilSync(0, 3, 100000)
		if !ok {
			t.Fatalf("trial %d: mesh of 20 did not converge in 100k slots", trial)
		}
		if at <= 0 {
			t.Fatalf("trial %d: nonsense sync slot %d", trial, at)
		}
	}
}

func TestEnsembleLineTopologyConvergence(t *testing.T) {
	// Tree (here: path) topologies also synchronize — the property the
	// paper's ST method relies on (proved in [17]).
	s := xrand.NewStream(43)
	n := 10
	phases := make([]float64, n)
	for i := range phases {
		phases[i] = s.Float64()
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	e := NewEnsemble(phases, 100, NewCoupling(3, 0.3), adj)
	if _, ok := e.RunUntilSync(0, 3, 500000); !ok {
		t.Fatal("path topology did not converge")
	}
}

func TestEnsembleOrderParameterIncreases(t *testing.T) {
	s := xrand.NewStream(44)
	phases := make([]float64, 30)
	for i := range phases {
		phases[i] = s.Float64()
	}
	e := NewEnsemble(phases, 100, DefaultCoupling(), nil)
	r0 := OrderParameter(e.Phases())
	for i := 0; i < 5000; i++ {
		e.Step()
	}
	r1 := OrderParameter(e.Phases())
	if r1 <= r0 {
		t.Errorf("order parameter did not increase: %v -> %v", r0, r1)
	}
}

func TestEnsembleStepReturnsFired(t *testing.T) {
	e := NewEnsemble([]float64{1 - 1.0/10, 0}, 10, DefaultCoupling(), nil)
	fired := e.Step()
	if len(fired) != 1 || fired[0] != 0 {
		t.Errorf("fired = %v, want [0]", fired)
	}
	if e.Slot() != 1 {
		t.Errorf("slot = %d, want 1", e.Slot())
	}
}
