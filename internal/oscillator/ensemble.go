package oscillator

// Ensemble is a self-contained slotted simulation of N pulse-coupled
// oscillators on an arbitrary coupling graph. It exists for two purposes:
// verifying the Mirollo–Strogatz convergence condition independently of the
// radio stack, and powering the syncdemo example. The protocol layers in
// internal/core run their own device loop on top of the radio channel; this
// type is the idealized (loss-free, collision-free) reference dynamics.
type Ensemble struct {
	// Oscillators are the member oscillators.
	Oscillators []*Oscillator
	// Adjacency lists which oscillators hear which: Adjacency[i] are the
	// indices receiving i's pulses. A nil entry means broadcast to all.
	Adjacency [][]int

	slot int64
}

// NewEnsemble builds an ensemble of n oscillators with the given initial
// phases (len(phases) must be n), period and coupling; adjacency nil means
// fully meshed.
func NewEnsemble(phases []float64, periodSlots int, c Coupling, adjacency [][]int) *Ensemble {
	osc := make([]*Oscillator, len(phases))
	for i, p := range phases {
		osc[i] = New(p, periodSlots, c)
	}
	return &Ensemble{Oscillators: osc, Adjacency: adjacency}
}

// Slot returns the current simulation slot.
func (e *Ensemble) Slot() int64 { return e.slot }

// Phases returns a snapshot of all phases.
func (e *Ensemble) Phases() []float64 {
	out := make([]float64, len(e.Oscillators))
	for i, o := range e.Oscillators {
		out[i] = o.Phase
	}
	return out
}

// Step advances the ensemble one slot and returns the indices that fired.
// Pulses are delivered within the same slot; a pulse that pushes a listener
// to threshold fires it in the same slot (absorption), and its pulse is
// propagated in turn. Refractory windows guarantee at most one fire per
// oscillator per slot, so the cascade terminates.
func (e *Ensemble) Step() []int {
	e.slot++
	var fired []int
	for i, o := range e.Oscillators {
		if o.Advance(e.slot) {
			fired = append(fired, i)
		}
	}
	// Worklist cascade: deliver each fire's pulse, enqueueing new fires.
	for k := 0; k < len(fired); k++ {
		i := fired[k]
		for _, j := range e.listeners(i) {
			if j == i {
				continue
			}
			if e.Oscillators[j].OnPulse(e.slot) {
				fired = append(fired, j)
			}
		}
	}
	return fired
}

func (e *Ensemble) listeners(i int) []int {
	if e.Adjacency == nil || e.Adjacency[i] == nil {
		all := make([]int, 0, len(e.Oscillators))
		for j := range e.Oscillators {
			all = append(all, j)
		}
		return all
	}
	return e.Adjacency[i]
}

// RunUntilSync steps the ensemble until all oscillators fire in the same
// slot window for stableRounds consecutive rounds, or until maxSlots
// elapse. It returns the slot at which synchrony was reached and true, or
// the last slot and false on timeout.
func (e *Ensemble) RunUntilSync(windowSlots int64, stableRounds int, maxSlots int64) (int64, bool) {
	det := NewSyncDetector(len(e.Oscillators), windowSlots, stableRounds)
	for e.slot < maxSlots {
		for _, i := range e.Step() {
			_ = i
			if det.OnFire(e.slot) {
				_, at := det.Synced()
				return at, true
			}
		}
	}
	return e.slot, false
}
