package oscillator_test

import (
	"fmt"

	"repro/internal/oscillator"
)

// ExampleNewCoupling computes the PRC constants of eq. (5).
func ExampleNewCoupling() {
	c := oscillator.NewCoupling(3, 0.1)
	fmt.Printf("alpha=%.4f beta=%.4f converges=%v\n", c.Alpha, c.Beta, c.Converges())
	// Output: alpha=1.3499 beta=0.0183 converges=true
}

// ExampleEnsemble_RunUntilSync synchronizes five pulse-coupled oscillators
// from spread-out phases.
func ExampleEnsemble_RunUntilSync() {
	phases := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	e := oscillator.NewEnsemble(phases, 100, oscillator.DefaultCoupling(), nil)
	_, ok := e.RunUntilSync(0, 3, 100000)
	fmt.Println("synchronized:", ok)
	fmt.Printf("order parameter: %.0f\n", oscillator.OrderParameter(e.Phases()))
	// Output:
	// synchronized: true
	// order parameter: 1
}

// ExampleOrderParameter distinguishes coherent from incoherent phases.
func ExampleOrderParameter() {
	fmt.Printf("%.2f\n", oscillator.OrderParameter([]float64{0.2, 0.2, 0.2}))
	fmt.Printf("%.2f\n", oscillator.OrderParameter([]float64{0, 0.25, 0.5, 0.75}))
	// Output:
	// 1.00
	// 0.00
}
