// Struct-of-arrays bulk view over a roster of oscillators.
//
// The slot engines' scaling problem is not the oscillator maths — it is the
// per-slot O(n) pointer chase over scattered *Oscillator objects, almost all
// of which do nothing in any given slot. Bulk keeps the one field the hot
// path actually scans — the exact next-fire slot — in a contiguous int64
// array, so deciding "does anything in this range fire at slot s?" is a
// linear scan over cache-resident integers (NextFireMin) and advancing a
// range through a slot touches only the members that fire (AdvanceAll).
//
// The mutable segment state (Phase, segment anchor, queued jumps) stays
// object-resident on purpose: protocols poke *Oscillator directly through
// the engine hooks, and duplicating that state into arrays would buy a
// coherence problem for fields that are only read at discontinuities. The
// SoA array holds exactly the scan state; everything else materializes
// lazily through AdvanceTo, which is bit-identical to slot-by-slot Advance
// by construction (see the segment arithmetic notes on Oscillator).
package oscillator

import "math"

// NeverFires is the next-fire sentinel for members that are descheduled
// (dropped) or whose effective ramp can never reach the threshold. It
// compares larger than any real slot.
const NeverFires = int64(math.MaxInt64)

// Bulk is a struct-of-arrays view over a fixed roster of oscillators: a
// contiguous cache of each member's exact next free-running fire slot, kept
// coherent by the caller refreshing members whose trajectory changed (pulse
// coupling, fire reset, external phase writes). Member indices are positions
// in the roster, not device ids — callers choosing a spatially sharded
// roster order get per-shard contiguity for free.
type Bulk struct {
	oscs []*Oscillator
	nf   []int64
	dead []bool
}

// NewBulk builds the bulk view over the roster and computes every member's
// next-fire slot. The roster is aliased, not copied.
func NewBulk(oscs []*Oscillator) *Bulk {
	b := &Bulk{
		oscs: oscs,
		nf:   make([]int64, len(oscs)),
		dead: make([]bool, len(oscs)),
	}
	for i := range oscs {
		b.Refresh(i)
	}
	return b
}

// Len returns the roster size.
func (b *Bulk) Len() int { return len(b.oscs) }

// Osc returns member i's oscillator.
func (b *Bulk) Osc(i int) *Oscillator { return b.oscs[i] }

// NextFire returns member i's cached next-fire slot (NeverFires when
// descheduled or free-running forever).
func (b *Bulk) NextFire(i int) int64 { return b.nf[i] }

// Refresh recomputes member i's next-fire slot from its oscillator state and
// returns it. Call after anything that changes the member's trajectory: an
// own fire, a coupling jump, a queued reachback jump, an external Phase
// write (after Rebase), or a rate change.
func (b *Bulk) Refresh(i int) int64 {
	if b.dead[i] {
		return NeverFires
	}
	if at, ok := b.oscs[i].NextFire(); ok {
		b.nf[i] = at
	} else {
		b.nf[i] = NeverFires
	}
	return b.nf[i]
}

// Drop deschedules member i (powered off): it no longer fires, advances or
// materializes until Revive.
func (b *Bulk) Drop(i int) {
	b.dead[i] = true
	b.nf[i] = NeverFires
}

// Revive reschedules a dropped member and returns its recomputed next fire.
func (b *Bulk) Revive(i int) int64 {
	b.dead[i] = false
	return b.Refresh(i)
}

// Dropped reports whether member i is descheduled.
func (b *Bulk) Dropped(i int) bool { return b.dead[i] }

// NextFireMin returns the earliest cached next-fire slot over members
// [lo, hi) — the per-shard scheduling key. A contiguous int64 scan, so a
// shard's "anything due?" check costs a handful of cache lines.
func (b *Bulk) NextFireMin(lo, hi int) int64 {
	min := NeverFires
	for _, at := range b.nf[lo:hi] {
		if at < min {
			min = at
		}
	}
	return min
}

// AdvanceAll advances members [lo, hi) through slot and appends the member
// indices that fire, in roster order. It is equivalent to calling Advance
// once per slot on every live member — bit for bit, including fire resets
// and queued reachback-jump maturation — but touches only the members whose
// cached next fire is due; everyone else's phase stays lazily materialized
// on its unchanged trajectory (AdvanceTo catches it up on demand).
//
// Fired members' cached next-fire slots are left stale on purpose: the
// caller refreshes them after the slot's pulse cascade settles, folding the
// fire reset and any coupling received in the same slot into one recompute.
// A cached entry strictly before slot means the caller skipped a non-inert
// slot — the same contract violation the event engine fails loud on.
func (b *Bulk) AdvanceAll(lo, hi int, slot int64, fired []int) []int {
	for i := lo; i < hi; i++ {
		at := b.nf[i]
		if at > slot {
			continue
		}
		if at < slot {
			panic("oscillator: Bulk stepped past a scheduled fire")
		}
		if !b.oscs[i].AdvanceTo(slot) {
			panic("oscillator: scheduled bulk fire did not happen")
		}
		fired = append(fired, i)
	}
	return fired
}

// MaterializeAll catches every live member in [lo, hi) up to slot without
// stepping past a fire — for phase snapshots and sampling boundaries, which
// must read the same values slot-by-slot stepping leaves behind.
func (b *Bulk) MaterializeAll(lo, hi int, slot int64) {
	for i := lo; i < hi; i++ {
		if !b.dead[i] {
			b.oscs[i].AdvanceTo(slot)
		}
	}
}
