package oscillator

import (
	"math"
	"testing"
)

// Tests for the slotted-radio extensions of the oscillator: the per-cycle
// jump budget (MEMFIS-style one adjustment per frame), the listening
// window, and clock-rate drift.

func TestJumpsPerCycleBudget(t *testing.T) {
	o := New(0.5, 100, DefaultCoupling())
	o.JumpsPerCycle = 1
	before := o.Phase
	if o.OnPulse(10) {
		t.Fatal("first pulse should not fire from phase 0.5")
	}
	if o.Phase <= before {
		t.Fatal("first pulse should advance the phase")
	}
	mid := o.Phase
	if o.OnPulse(11) {
		t.Fatal("budget-exhausted pulse must not fire")
	}
	if o.Phase != mid {
		t.Error("budget-exhausted pulse must not change the phase")
	}
	// The budget refills when the oscillator fires.
	for slot := int64(12); ; slot++ {
		if o.Advance(slot) {
			break
		}
	}
	after := o.Phase
	o.Advance(1000) // move out of the refractory window
	prev := o.Phase
	o.OnPulse(1000)
	if o.Phase <= prev {
		t.Error("budget should refill after the oscillator's own fire")
	}
	_ = after
}

func TestJumpsPerCycleZeroIsUnlimited(t *testing.T) {
	o := New(0.1, 100, DefaultCoupling())
	o.JumpsPerCycle = 0
	p := o.Phase
	for i := 0; i < 5; i++ {
		o.OnPulse(int64(10 + i))
		if o.Phase <= p {
			t.Fatalf("pulse %d did not advance phase", i)
		}
		p = o.Phase
	}
}

func TestListenPhaseGatesPulses(t *testing.T) {
	o := New(0.3, 100, DefaultCoupling())
	o.ListenPhase = 0.5
	before := o.Phase
	if o.OnPulse(10) {
		t.Fatal("gated pulse should not fire")
	}
	if o.Phase != before {
		t.Error("pulse before the listening window must be ignored")
	}
	o.Phase = 0.7
	o.OnPulse(11)
	if o.Phase <= 0.7 {
		t.Error("pulse inside the listening window must couple")
	}
}

func TestListenPhaseDoesNotConsumeBudget(t *testing.T) {
	o := New(0.3, 100, DefaultCoupling())
	o.ListenPhase = 0.5
	o.JumpsPerCycle = 1
	o.OnPulse(10) // gated: must not consume the budget
	o.Phase = 0.8
	// With budget still available, the in-window pulse couples — here it
	// absorbs (0.8 is within the absorption window), i.e. fires.
	if !o.OnPulse(11) {
		t.Error("in-window pulse should still have budget after a gated pulse")
	}
}

func TestRateDrift(t *testing.T) {
	fast := New(0, 100, DefaultCoupling())
	fast.Rate = 1.02
	slow := New(0, 100, DefaultCoupling())
	slow.Rate = 0.98
	fastFires, slowFires := 0, 0
	for slot := int64(1); slot <= 10000; slot++ {
		if fast.Advance(slot) {
			fastFires++
		}
		if slow.Advance(slot) {
			slowFires++
		}
	}
	if fastFires <= slowFires {
		t.Errorf("fast clock fired %d times, slow %d — fast should lead", fastFires, slowFires)
	}
	// 2% rate difference over 100 periods: expect ~102 vs ~98 fires.
	if math.Abs(float64(fastFires)-102) > 2 || math.Abs(float64(slowFires)-98) > 2 {
		t.Errorf("fires = %d/%d, want ~102/~98", fastFires, slowFires)
	}
}

func TestRateZeroTreatedAsNominal(t *testing.T) {
	o := New(0, 100, DefaultCoupling())
	o.Rate = 0
	fires := 0
	for slot := int64(1); slot <= 1000; slot++ {
		if o.Advance(slot) {
			fires++
		}
	}
	if fires != 10 {
		t.Errorf("rate 0 fired %d times in 1000 slots, want 10 (nominal)", fires)
	}
}

func TestDriftedPairStaysLockedUnderCoupling(t *testing.T) {
	// Two oscillators with 1% rate skew, coupled both ways: absorption
	// re-locks them every period, so fires stay within one slot.
	a := New(0.2, 100, DefaultCoupling())
	b := New(0.2, 100, DefaultCoupling())
	a.Rate, b.Rate = 1.01, 0.99
	lastA, lastB := int64(-1), int64(-1)
	maxGap := int64(0)
	for slot := int64(1); slot <= 20000; slot++ {
		fa := a.Advance(slot)
		fb := b.Advance(slot)
		if fa && !fb {
			b.OnPulse(slot)
			// absorption may fire b in the same slot
			if b.Phase == 0 {
				fb = true
			}
		} else if fb && !fa {
			a.OnPulse(slot)
			if a.Phase == 0 {
				fa = true
			}
		}
		if fa {
			lastA = slot
		}
		if fb {
			lastB = slot
		}
		if lastA > 0 && lastB > 0 && slot > 1000 {
			gap := lastA - lastB
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap && gap < 50 { // ignore mid-period comparisons
				maxGap = gap
			}
		}
	}
	if maxGap > 3 {
		t.Errorf("coupled drifted pair diverged by %d slots", maxGap)
	}
}
