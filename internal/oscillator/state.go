// Checkpoint support: serializable copies of the oscillator's and the sync
// detector's mutable state. Static parameters (period, coupling, refractory,
// listen window, drift rate) are not captured — a restore rebuilds them by
// re-running the deterministic environment setup and then overlays this
// state, so the snapshot stays small and schema changes stay rare.

package oscillator

// QueuedJumpState is one pending reachback correction.
type QueuedJumpState struct {
	ApplyAt int64   `json:"apply_at"`
	Delta   float64 `json:"delta"`
}

// State is the mutable state of one oscillator: the phase, the refractory /
// jump-budget bookkeeping, pending reachback corrections, and the lazy
// segment anchor. The segment anchor must round-trip exactly — Advance and
// NextFire evaluate the closed-form segment expression, so a restore that
// re-derived the anchor from Phase alone could round differently and drift
// off the bit-identical trajectory.
type State struct {
	Phase        float64 `json:"phase"`
	RefractUntil int64   `json:"refract_until"`
	JumpsUsed    int     `json:"jumps_used"`
	// VirtualAnchor records that the current cycle anchor came from a
	// virtual fire (adversary runs only; omitted when false so degenerate
	// snapshots keep their pre-asynchrony byte layout).
	VirtualAnchor bool `json:"virtual_anchor,omitempty"`
	// RetroFrom is the origin fire slot of a retro-aligned cycle (adversary
	// runs only; zero and omitted when the cycle's fire stands unrewritten).
	RetroFrom int64             `json:"retro_from,omitempty"`
	Queued    []QueuedJumpState `json:"queued,omitempty"`
	SegBase   float64           `json:"seg_base"`
	SegSteps  int64             `json:"seg_steps"`
	SegStep   float64           `json:"seg_step"`
	LastMat   float64           `json:"last_mat"`
	LastSlot  int64             `json:"last_slot"`
}

// State returns a deep copy of the oscillator's mutable state, in canonical
// form: a pending external phase write (Phase ≠ lastMat — e.g. a sync-word
// adoption the engine has not stepped past yet) is serialized as the
// re-anchored segment the next resegment() would produce. Engines differ in
// when they re-anchor after such a write (the event engine does it eagerly to
// rebuild its fire schedule, the slot loop lazily on the next step), and the
// two forms are behaviorally identical — canonicalizing here makes them
// byte-identical too.
func (o *Oscillator) State() State {
	st := State{
		Phase:         o.Phase,
		RefractUntil:  o.refractUntil,
		JumpsUsed:     o.jumpsUsed,
		VirtualAnchor: o.anchorVirtual,
		RetroFrom:     o.retroFrom,
		SegBase:       o.segBase,
		SegSteps:      o.segSteps,
		SegStep:       o.segStep,
		LastMat:       o.lastMat,
		LastSlot:      o.lastSlot,
	}
	if o.Phase != o.lastMat {
		st.SegBase = o.Phase
		st.SegSteps = 0
		st.LastMat = o.Phase
	}
	for _, q := range o.queued {
		st.Queued = append(st.Queued, QueuedJumpState{ApplyAt: q.applyAt, Delta: q.delta})
	}
	return st
}

// SetState overwrites the oscillator's mutable state with a saved copy.
// Static parameters are left untouched.
func (o *Oscillator) SetState(st State) {
	o.Phase = st.Phase
	o.refractUntil = st.RefractUntil
	o.jumpsUsed = st.JumpsUsed
	o.anchorVirtual = st.VirtualAnchor
	o.retroFrom = st.RetroFrom
	o.queued = o.queued[:0]
	for _, q := range st.Queued {
		o.queued = append(o.queued, queuedJump{applyAt: q.ApplyAt, delta: q.Delta})
	}
	o.segBase = st.SegBase
	o.segSteps = st.SegSteps
	o.segStep = st.SegStep
	o.lastMat = st.LastMat
	o.lastSlot = st.LastSlot
}

// DetectorState is the full state of a SyncDetector. The parameters are
// included — N tracks the live population and is re-armed on every fault
// application, so a restore cannot rebuild it from config alone.
type DetectorState struct {
	N            int   `json:"n"`
	WindowSlots  int64 `json:"window_slots"`
	StableRounds int   `json:"stable_rounds"`
	RoundStart   int64 `json:"round_start"`
	RoundSeen    int   `json:"round_seen"`
	Stable       int   `json:"stable"`
	Active       bool  `json:"active"`
	Synced       bool  `json:"synced"`
	SyncedAt     int64 `json:"synced_at"`
}

// State returns a copy of the detector's state.
func (d *SyncDetector) State() DetectorState {
	return DetectorState{
		N:            d.N,
		WindowSlots:  d.WindowSlots,
		StableRounds: d.StableRounds,
		RoundStart:   d.roundStart,
		RoundSeen:    d.roundSeen,
		Stable:       d.stable,
		Active:       d.active,
		Synced:       d.synced,
		SyncedAt:     d.syncedAt,
	}
}

// SetState overwrites the detector's state with a saved copy.
func (d *SyncDetector) SetState(st DetectorState) {
	d.N = st.N
	d.WindowSlots = st.WindowSlots
	d.StableRounds = st.StableRounds
	d.roundStart = st.RoundStart
	d.roundSeen = st.RoundSeen
	d.stable = st.Stable
	d.active = st.Active
	d.synced = st.Synced
	d.syncedAt = st.SyncedAt
}
