package oscillator

import (
	"testing"

	"repro/internal/xrand"
)

func BenchmarkEnsembleStepMesh(b *testing.B) {
	src := xrand.NewStream(1)
	phases := make([]float64, 200)
	for i := range phases {
		phases[i] = src.Float64()
	}
	e := NewEnsemble(phases, 100, WeakCoupling(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkKuramotoStepMesh(b *testing.B) {
	src := xrand.NewStream(2)
	n := 200
	ph := make([]float64, n)
	om := make([]float64, n)
	for i := range ph {
		ph[i] = src.Uniform(0, 6.28)
		om[i] = 1
	}
	k := NewKuramoto(ph, om, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(0.01)
	}
}

func BenchmarkOnPulse(b *testing.B) {
	o := New(0.4, 100, WeakCoupling())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Phase = 0.4
		o.OnPulse(int64(i + 10))
	}
}
