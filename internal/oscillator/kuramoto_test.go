package oscillator

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func randomPhasesOmega(n int, sigma float64, seed int64) (ph, om []float64) {
	src := xrand.NewStream(seed)
	ph = make([]float64, n)
	om = make([]float64, n)
	for i := range ph {
		ph[i] = src.Uniform(0, 2*math.Pi)
		om[i] = src.Gaussian(1, sigma)
	}
	return ph, om
}

func runKuramoto(k *Kuramoto, steps int, dt float64) {
	for i := 0; i < steps; i++ {
		k.Step(dt)
	}
}

func TestKuramotoIdenticalFrequenciesSync(t *testing.T) {
	ph, om := randomPhasesOmega(30, 0, 1)
	k := NewKuramoto(ph, om, 1.0, nil)
	runKuramoto(k, 4000, 0.01)
	if r := k.Order(); r < 0.999 {
		t.Errorf("identical frequencies should fully synchronize: r = %v", r)
	}
}

func TestKuramotoCriticalCouplingThreshold(t *testing.T) {
	// Above Kc the mean-field model partially locks; far below it stays
	// incoherent. This is the classic Kuramoto transition, and it agrees
	// with the analytic Kc = σ·√(8/π).
	const sigma = 0.5
	kc := CriticalCoupling(sigma)
	if math.Abs(kc-sigma*1.5957691) > 1e-6 {
		t.Fatalf("Kc formula wrong: %v", kc)
	}
	ph, om := randomPhasesOmega(120, sigma, 2)

	strong := NewKuramoto(ph, om, 3*kc, nil)
	runKuramoto(strong, 3000, 0.01)
	weak := NewKuramoto(ph, om, kc/5, nil)
	runKuramoto(weak, 3000, 0.01)

	if rs := strong.Order(); rs < 0.8 {
		t.Errorf("K = 3Kc should lock most oscillators: r = %v", rs)
	}
	if rw := weak.Order(); rw > 0.4 {
		t.Errorf("K = Kc/5 should stay incoherent: r = %v", rw)
	}
	if strong.Order() <= weak.Order() {
		t.Error("order above critical coupling should exceed below")
	}
}

func TestKuramotoRingTopology(t *testing.T) {
	// Nearest-neighbour ring with identical frequencies synchronizes too
	// (slower) — matching the pulse-coupled ring in the syncdemo example.
	n := 20
	ph, om := randomPhasesOmega(n, 0, 3)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	k := NewKuramoto(ph, om, 2.0, adj)
	runKuramoto(k, 40000, 0.01)
	if r := k.Order(); r < 0.95 {
		t.Errorf("ring should (nearly) synchronize: r = %v", r)
	}
}

func TestKuramotoAgreesWithPulseCoupledQualitatively(t *testing.T) {
	// The cross-validation: with homogeneous clocks both models reach
	// synchrony from random initial phases on a full mesh.
	ph, om := randomPhasesOmega(25, 0, 4)
	k := NewKuramoto(ph, om, 1.0, nil)
	runKuramoto(k, 4000, 0.01)

	src := xrand.NewStream(5)
	phases := make([]float64, 25)
	for i := range phases {
		phases[i] = src.Float64()
	}
	e := NewEnsemble(phases, 100, DefaultCoupling(), nil)
	_, pulseOK := e.RunUntilSync(0, 3, 200000)

	if k.Order() < 0.999 || !pulseOK {
		t.Errorf("models disagree: kuramoto r=%v, pulse-coupled synced=%v", k.Order(), pulseOK)
	}
}

func TestKuramotoPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	NewKuramoto([]float64{0}, []float64{1, 2}, 1, nil)
}

func TestKuramotoOrderEmpty(t *testing.T) {
	k := &Kuramoto{}
	if k.Order() != 1 {
		t.Error("empty model order should be 1")
	}
}

func TestKuramotoIsolatedOscillatorFreeRuns(t *testing.T) {
	k := NewKuramoto([]float64{0}, []float64{2 * math.Pi}, 5, [][]int{nil})
	k.Step(0.5)
	if math.Abs(k.Phases[0]-math.Pi) > 1e-12 {
		t.Errorf("isolated oscillator should advance by ω·dt: %v", k.Phases[0])
	}
}
