package oscillator

import (
	"math/rand"
	"testing"
)

// cloneOsc copies an oscillator's full configuration so a reference twin can
// be driven independently. Fresh oscillators share no mutable state.
func cloneOsc(src *Oscillator) *Oscillator {
	o := New(src.Phase, src.PeriodSlots, src.Coupling)
	o.Refractory = src.Refractory
	o.JumpsPerCycle = src.JumpsPerCycle
	o.ListenPhase = src.ListenPhase
	o.Rate = src.Rate
	o.ReachbackDelaySlots = src.ReachbackDelaySlots
	return o
}

// randomRoster builds n oscillators with varied phases, drift rates, jump
// budgets and (when reachback is true) queued-jump delays — every edge the
// bulk path must reproduce.
func randomRoster(rng *rand.Rand, n int, reachback bool) ([]*Oscillator, []*Oscillator) {
	bulk := make([]*Oscillator, n)
	ref := make([]*Oscillator, n)
	for i := range bulk {
		o := New(rng.Float64(), 40+rng.Intn(80), DefaultCoupling())
		o.Rate = 1 + (rng.Float64()-0.5)*0.02 // ±1% drift
		if rng.Intn(3) == 0 {
			o.JumpsPerCycle = 1 + rng.Intn(2)
		}
		if rng.Intn(4) == 0 {
			o.ListenPhase = rng.Float64() * 0.3
		}
		if reachback && rng.Intn(2) == 0 {
			o.ReachbackDelaySlots = 1 + rng.Intn(5)
		}
		bulk[i] = o
		ref[i] = cloneOsc(o)
	}
	return bulk, ref
}

// TestBulkAdvanceAllMatchesAdvance is the bit-identity property test: a
// roster driven through Bulk.AdvanceAll (lazy, fire-scheduled) must produce
// exactly the fires, phases and segment trajectories of a twin roster driven
// by per-oscillator Advance every slot — including fire resets (absorption
// via OnPulse pushing a phase to threshold) and queued reachback-jump
// maturation splitting the linear segment mid-span.
func TestBulkAdvanceAllMatchesAdvance(t *testing.T) {
	for _, tc := range []struct {
		name      string
		reachback bool
		pulseProb float64
	}{
		{"pure-ramp", false, 0},
		{"coupled", false, 0.15},
		{"reachback", true, 0.15},
		{"dense-coupling", false, 0.6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			oscs, refs := randomRoster(rng, 60, tc.reachback)
			b := NewBulk(oscs)
			var fired []int
			const slots = 500
			for slot := int64(1); slot <= slots; slot++ {
				// Reference: eager per-oscillator stepping.
				var refFired []int
				for i, o := range refs {
					if o.Advance(slot) {
						refFired = append(refFired, i)
					}
				}
				// Bulk: lazy fire-scheduled stepping.
				fired = b.AdvanceAll(0, b.Len(), slot, fired[:0])
				if len(fired) != len(refFired) {
					t.Fatalf("slot %d: bulk fired %v, reference fired %v", slot, fired, refFired)
				}
				for k := range fired {
					if fired[k] != refFired[k] {
						t.Fatalf("slot %d: bulk fired %v, reference fired %v", slot, fired, refFired)
					}
				}
				// Inject identical pulses into both twins: receivers chosen
				// from the same deterministic draw sequence. The bulk twin
				// materializes first — exactly what the engines do before
				// OnPulse.
				for i := range oscs {
					if rng.Float64() >= tc.pulseProb {
						continue
					}
					oscs[i].AdvanceTo(slot)
					bf := oscs[i].OnPulse(slot)
					rf := refs[i].OnPulse(slot)
					if bf != rf {
						t.Fatalf("slot %d member %d: OnPulse fired bulk=%v ref=%v", slot, i, bf, rf)
					}
					b.Refresh(i)
				}
				// Fired members' cached entries are stale by contract;
				// refresh them after the "cascade".
				for _, i := range fired {
					b.Refresh(i)
				}
				// Periodically materialize everything and compare phases and
				// queued-jump counts exactly.
				if slot%97 == 0 || slot == slots {
					b.MaterializeAll(0, b.Len(), slot)
					for i := range oscs {
						if oscs[i].Phase != refs[i].Phase {
							t.Fatalf("slot %d member %d: phase bulk=%v ref=%v", slot, i, oscs[i].Phase, refs[i].Phase)
						}
						if oscs[i].QueuedJumps() != refs[i].QueuedJumps() {
							t.Fatalf("slot %d member %d: queued bulk=%d ref=%d",
								slot, i, oscs[i].QueuedJumps(), refs[i].QueuedJumps())
						}
					}
				}
			}
		})
	}
}

// TestBulkNextFireMin pins the range-minimum scan against the cached values.
func TestBulkNextFireMin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	oscs, _ := randomRoster(rng, 40, false)
	b := NewBulk(oscs)
	for _, r := range [][2]int{{0, 40}, {0, 1}, {13, 27}, {39, 40}} {
		want := NeverFires
		for i := r[0]; i < r[1]; i++ {
			if b.NextFire(i) < want {
				want = b.NextFire(i)
			}
		}
		if got := b.NextFireMin(r[0], r[1]); got != want {
			t.Errorf("NextFireMin(%d,%d) = %d, want %d", r[0], r[1], got, want)
		}
	}
}

// TestBulkDropRevive pins the deschedule lifecycle: dropped members neither
// fire nor materialize; revived members rejoin with an exact prediction.
func TestBulkDropRevive(t *testing.T) {
	oscs := []*Oscillator{New(0.5, 100, DefaultCoupling()), New(0.25, 100, DefaultCoupling())}
	b := NewBulk(oscs)
	at0 := b.NextFire(0)
	b.Drop(0)
	if b.NextFire(0) != NeverFires || !b.Dropped(0) {
		t.Fatal("dropped member still scheduled")
	}
	if got := b.NextFireMin(0, 2); got != b.NextFire(1) {
		t.Fatalf("min should come from live member: got %d", got)
	}
	var fired []int
	for s := int64(1); s <= 200; s++ {
		if b.NextFireMin(0, 2) == s {
			fired = b.AdvanceAll(0, 2, s, fired)
		}
	}
	for _, m := range fired {
		if m == 0 {
			t.Fatal("dropped member fired")
		}
	}
	if b.Revive(0) != at0 {
		t.Fatalf("revived member prediction changed: %d vs %d", b.NextFire(0), at0)
	}
}
