package oscillator

import "math"

// Kuramoto is the continuous-phase companion of the pulse-coupled model:
// dθ_i/dt = ω_i + (K/deg_i)·Σ_j sin(θ_j − θ_i). The firefly literature the
// paper builds on ([15], [16]) analyses both; having the mean-field model
// here lets the tests cross-validate qualitative behaviour (synchrony for
// sufficient coupling, the critical-coupling threshold under frequency
// spread) against an independent formulation.
type Kuramoto struct {
	// Phases are in radians.
	Phases []float64
	// Omega are natural frequencies in rad per unit time.
	Omega []float64
	// K is the coupling gain.
	K float64
	// Adjacency lists each oscillator's neighbours; nil = all-to-all.
	Adjacency [][]int

	scratch []float64
}

// NewKuramoto builds a model over the given initial phases and frequencies
// (lengths must match).
func NewKuramoto(phases, omega []float64, k float64, adjacency [][]int) *Kuramoto {
	if len(phases) != len(omega) {
		panic("oscillator: phases/omega length mismatch")
	}
	return &Kuramoto{
		Phases:    append([]float64(nil), phases...),
		Omega:     append([]float64(nil), omega...),
		K:         k,
		Adjacency: adjacency,
		scratch:   make([]float64, len(phases)),
	}
}

// Step advances the model by dt with explicit Euler (adequate for the small
// steps the tests use).
func (k *Kuramoto) Step(dt float64) {
	n := len(k.Phases)
	for i := 0; i < n; i++ {
		var sum float64
		var deg float64
		if k.Adjacency == nil {
			for j := 0; j < n; j++ {
				if j != i {
					sum += math.Sin(k.Phases[j] - k.Phases[i])
				}
			}
			deg = float64(n - 1)
		} else {
			for _, j := range k.Adjacency[i] {
				sum += math.Sin(k.Phases[j] - k.Phases[i])
			}
			deg = float64(len(k.Adjacency[i]))
		}
		drive := k.Omega[i]
		if deg > 0 {
			drive += k.K / deg * sum
		}
		k.scratch[i] = k.Phases[i] + dt*drive
	}
	copy(k.Phases, k.scratch)
}

// Order returns the Kuramoto order parameter r = |Σ e^{iθ}|/n of the
// current phases (radians).
func (k *Kuramoto) Order() float64 {
	var re, im float64
	for _, p := range k.Phases {
		re += math.Cos(p)
		im += math.Sin(p)
	}
	n := float64(len(k.Phases))
	if n == 0 {
		return 1
	}
	return math.Hypot(re, im) / n
}

// CriticalCoupling returns the mean-field critical coupling Kc for a
// Gaussian frequency spread of standard deviation sigma:
// Kc = 2/(π·g(0)) with g(0) = 1/(σ√(2π)), i.e. Kc = σ·√(8/π).
func CriticalCoupling(sigma float64) float64 {
	return sigma * math.Sqrt(8/math.Pi)
}
