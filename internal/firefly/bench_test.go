package firefly

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/xrand"
)

func benchParams(n int) Params {
	p := DefaultParams(n, 2, -10, 10)
	p.Iterations = 5
	return p
}

func BenchmarkRunBasic(b *testing.B) {
	p := benchParams(128)
	obj := Sphere([]float64{0, 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, obj, xrand.NewStream(int64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunOrdered(b *testing.B) {
	p := benchParams(128)
	obj := Sphere([]float64{0, 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOrdered(p, obj, xrand.NewStream(int64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSynchronous(b *testing.B) {
	p := benchParams(128)
	obj := Sphere([]float64{0, 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSynchronous(p, obj, xrand.NewStreams(int64(i)+1), 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalize(b *testing.B) {
	obs := []RangeObservation{
		{Anchor: geo.Point{X: 10, Y: 10}, Distance: 50},
		{Anchor: geo.Point{X: 90, Y: 20}, Distance: 55},
		{Anchor: geo.Point{X: 50, Y: 90}, Distance: 40},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Localize(obs, geo.Square(100), xrand.NewStream(int64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
