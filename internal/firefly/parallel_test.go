package firefly

import (
	"testing"

	"repro/internal/xrand"
)

func TestRunSynchronousFindsOptimum(t *testing.T) {
	p := DefaultParams(40, 2, -10, 10)
	p.Iterations = 150
	res, err := RunSynchronous(p, Sphere([]float64{3, -2}), xrand.NewStreams(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIntensity < -1.0 {
		t.Errorf("best intensity = %v, want near 0", res.BestIntensity)
	}
}

func TestRunSynchronousDeterministicAcrossWorkers(t *testing.T) {
	p := DefaultParams(30, 3, -5, 5)
	p.Iterations = 25
	obj := Sphere([]float64{1, 1, 1})
	base, err := RunSynchronous(p, obj, xrand.NewStreams(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		got, err := RunSynchronous(p, obj, xrand.NewStreams(7), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.BestIntensity != base.BestIntensity || got.Interactions != base.Interactions {
			t.Fatalf("workers=%d diverged: %v/%d vs %v/%d", workers,
				got.BestIntensity, got.Interactions, base.BestIntensity, base.Interactions)
		}
		for d := range base.Best {
			if got.Best[d] != base.Best[d] {
				t.Fatalf("workers=%d best position differs", workers)
			}
		}
	}
}

func TestRunSynchronousValidation(t *testing.T) {
	bad := Params{N: 0, Dims: 1, Lo: 0, Hi: 1, EtaDecay: 1}
	if _, err := RunSynchronous(bad, Sphere([]float64{0}), xrand.NewStreams(1), 2); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunSynchronousInteractionsMatchOrderedBound(t *testing.T) {
	p := DefaultParams(64, 2, -5, 5)
	p.Iterations = 4
	res, err := RunSynchronous(p, Sphere([]float64{0, 0}), xrand.NewStreams(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	maxOrdered := uint64(4 * 64 * (6 + 2)) // iterations · n · (log2 n + 2)
	if res.Interactions > maxOrdered {
		t.Errorf("interactions = %d exceed the n log n bound %d", res.Interactions, maxOrdered)
	}
	if res.Iterations != 4 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestRunSynchronousZeroIterations(t *testing.T) {
	p := DefaultParams(10, 2, -1, 1)
	p.Iterations = 0
	res, err := RunSynchronous(p, Sphere([]float64{0, 0}), xrand.NewStreams(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions != 0 || res.Evaluations != 10 {
		t.Errorf("zero-iteration run: %+v", res)
	}
	if len(res.Best) != 2 {
		t.Error("best missing")
	}
}
