package firefly

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/xrand"
)

func TestRunFindsSphereMaximum(t *testing.T) {
	src := xrand.NewStream(1)
	centre := []float64{2, -3}
	p := DefaultParams(30, 2, -10, 10)
	res, err := Run(p, Sphere(centre), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIntensity < -0.5 {
		t.Errorf("best intensity = %v, want near 0", res.BestIntensity)
	}
	for d := range centre {
		if math.Abs(res.Best[d]-centre[d]) > 0.8 {
			t.Errorf("best[%d] = %v, want near %v", d, res.Best[d], centre[d])
		}
	}
}

func TestRunOrderedFindsSphereMaximum(t *testing.T) {
	src := xrand.NewStream(2)
	centre := []float64{-4, 5, 1}
	p := DefaultParams(40, 3, -10, 10)
	p.Iterations = 150
	res, err := RunOrdered(p, Sphere(centre), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIntensity < -1.0 {
		t.Errorf("best intensity = %v, want near 0", res.BestIntensity)
	}
}

func TestOrderedInteractionsSubquadratic(t *testing.T) {
	// The heart of the paper's complexity claim: per-iteration
	// interactions are O(n²) for Run and O(n log n) for RunOrdered.
	for _, n := range []int{32, 128} {
		p := DefaultParams(n, 2, -5, 5)
		p.Iterations = 3
		naive, err := Run(p, Sphere([]float64{0, 0}), xrand.NewStream(3))
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := RunOrdered(p, Sphere([]float64{0, 0}), xrand.NewStream(3))
		if err != nil {
			t.Fatal(err)
		}
		// Naive: n(n-1) per iteration. Ordered: ≤ n(log2 n + 2).
		wantNaive := uint64(3 * n * (n - 1))
		if naive.Interactions != wantNaive {
			t.Errorf("n=%d naive interactions = %d, want %d", n, naive.Interactions, wantNaive)
		}
		maxOrdered := uint64(3 * n * (int(math.Ceil(math.Log2(float64(n)))) + 2))
		if ordered.Interactions > maxOrdered {
			t.Errorf("n=%d ordered interactions = %d, exceeds n log n bound %d", n, ordered.Interactions, maxOrdered)
		}
		if ordered.Interactions >= naive.Interactions {
			t.Errorf("n=%d ordered (%d) should beat naive (%d)", n, ordered.Interactions, naive.Interactions)
		}
	}
}

func TestInteractionRatioGrowsWithN(t *testing.T) {
	ratio := func(n int) float64 {
		p := DefaultParams(n, 2, -5, 5)
		p.Iterations = 2
		naive, _ := Run(p, Sphere([]float64{0, 0}), xrand.NewStream(4))
		ordered, _ := RunOrdered(p, Sphere([]float64{0, 0}), xrand.NewStream(4))
		return float64(naive.Interactions) / float64(ordered.Interactions)
	}
	if r32, r256 := ratio(32), ratio(256); r256 <= r32 {
		t.Errorf("naive/ordered ratio should grow with n: %v (n=32) vs %v (n=256)", r32, r256)
	}
}

func TestParamValidation(t *testing.T) {
	src := xrand.NewStream(5)
	obj := Sphere([]float64{0})
	bad := []Params{
		{N: 0, Dims: 1, Lo: 0, Hi: 1, EtaDecay: 1},
		{N: 5, Dims: 0, Lo: 0, Hi: 1, EtaDecay: 1},
		{N: 5, Dims: 1, Lo: 1, Hi: 1, EtaDecay: 1},
		{N: 5, Dims: 1, Lo: 0, Hi: 1, Iterations: -1, EtaDecay: 1},
		{N: 5, Dims: 1, Lo: 0, Hi: 1, EtaDecay: 0},
		{N: 5, Dims: 1, Lo: 0, Hi: 1, EtaDecay: 1.5},
	}
	for i, p := range bad {
		if _, err := Run(p, obj, src); err == nil {
			t.Errorf("case %d: Run accepted invalid params %+v", i, p)
		}
		if _, err := RunOrdered(p, obj, src); err == nil {
			t.Errorf("case %d: RunOrdered accepted invalid params %+v", i, p)
		}
	}
}

func TestZeroIterationsReturnsInitialBest(t *testing.T) {
	src := xrand.NewStream(6)
	p := DefaultParams(10, 2, -1, 1)
	p.Iterations = 0
	res, err := Run(p, Sphere([]float64{0, 0}), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.Interactions != 0 {
		t.Errorf("zero-iteration run did work: %+v", res)
	}
	if res.Evaluations != 10 {
		t.Errorf("evaluations = %d, want 10 (initial population)", res.Evaluations)
	}
	if len(res.Best) != 2 {
		t.Error("best position missing")
	}
}

func TestPositionsStayInBox(t *testing.T) {
	src := xrand.NewStream(7)
	p := DefaultParams(20, 2, -2, 2)
	p.Eta = 5 // violent randomization to stress the clamp
	p.Iterations = 20
	res, err := Run(p, Sphere([]float64{0, 0}), src)
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range res.Best {
		if v < -2 || v > 2 {
			t.Errorf("best[%d] = %v escaped the box", d, v)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := DefaultParams(15, 2, -5, 5)
	p.Iterations = 10
	a, _ := Run(p, Sphere([]float64{1, 1}), xrand.NewStream(8))
	b, _ := Run(p, Sphere([]float64{1, 1}), xrand.NewStream(8))
	if a.BestIntensity != b.BestIntensity || a.Interactions != b.Interactions {
		t.Error("identical seeds should give identical runs")
	}
}

func TestSphere(t *testing.T) {
	f := Sphere([]float64{1, 2})
	if got := f([]float64{1, 2}); got != 0 {
		t.Errorf("sphere at centre = %v", got)
	}
	if got := f([]float64{2, 2}); got != -1 {
		t.Errorf("sphere at unit offset = %v", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]uint64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLocalizeRecoversPosition(t *testing.T) {
	src := xrand.NewStream(9)
	area := geo.Square(100)
	truth := geo.Point{X: 40, Y: 60}
	anchors := []geo.Point{{X: 10, Y: 10}, {X: 90, Y: 20}, {X: 50, Y: 90}, {X: 20, Y: 70}}
	var obs []RangeObservation
	for _, a := range anchors {
		obs = append(obs, RangeObservation{Anchor: a, Distance: truth.Dist(a)})
	}
	got, err := Localize(obs, area, src)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(truth); d > 3 {
		t.Errorf("localization error %v m with perfect ranges, want < 3 m", d)
	}
}

func TestLocalizeNoisyRanges(t *testing.T) {
	src := xrand.NewStream(10)
	area := geo.Square(100)
	truth := geo.Point{X: 55, Y: 35}
	anchors := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}, {X: 50, Y: 50}}
	var obs []RangeObservation
	for _, a := range anchors {
		noisy := truth.Dist(a) * (1 + 0.1*src.Norm())
		obs = append(obs, RangeObservation{Anchor: a, Distance: noisy})
	}
	got, err := Localize(obs, area, src)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(truth); d > 15 {
		t.Errorf("noisy localization error %v m, want < 15 m", d)
	}
}

func TestLocalizeNoObservations(t *testing.T) {
	if _, err := Localize(nil, geo.Square(10), xrand.NewStream(11)); err == nil {
		t.Error("empty observations should error")
	}
}
