// Package firefly implements Yang's firefly metaheuristic exactly as the
// paper's Algorithm 3 (F_F_A) describes it, in both the basic form and the
// ordered variant the paper's complexity claim rests on.
//
// In the basic algorithm every firefly compares itself against every other
// firefly each iteration — the inner double loop of Algorithm 3, lines 7–12
// — giving O(n²) pairwise interactions per iteration (the paper cites [22]
// for this). The proposed improvement keeps the population *sorted by light
// intensity* (Algorithm 3 line 5); a firefly then finds a brighter firefly
// by binary search over the ordered structure in O(log n), giving
// O(n log n) work per iteration. Both variants use the same location update,
// eq. (13):
//
//	x_i ← x_i + k·exp(−γ·r_ij²)·(x_j − x_i) + η·μ
//
// where γ is the light absorption (attraction) coefficient, k the step
// toward the better solution, η the randomization weight and μ a Gaussian
// vector. Interaction counts are reported so the complexity gap is directly
// measurable (ablation C in DESIGN.md).
package firefly

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Objective is the light-intensity function f(x); fireflies seek its
// maximum (brightness = objective value).
type Objective func(x []float64) float64

// Params configures a run.
type Params struct {
	// N is the population size.
	N int
	// Dims is the search-space dimensionality d.
	Dims int
	// Gamma is the light absorption coefficient γ.
	Gamma float64
	// K is the attraction step size k.
	K float64
	// Eta is the randomization weight η; it decays geometrically by
	// EtaDecay each iteration (standard FA practice; set EtaDecay=1 for
	// the paper's fixed-η form).
	Eta float64
	// EtaDecay multiplies Eta once per iteration (0 < EtaDecay <= 1).
	EtaDecay float64
	// Iterations is the number of generations to run.
	Iterations int
	// Lo, Hi bound each coordinate of the search space.
	Lo, Hi float64
}

// DefaultParams returns a reasonable configuration for a d-dimensional
// search on [-lo, hi].
func DefaultParams(n, dims int, lo, hi float64) Params {
	return Params{
		N: n, Dims: dims, Gamma: 1, K: 0.5,
		Eta: 0.2 * (hi - lo), EtaDecay: 0.97,
		Iterations: 100, Lo: lo, Hi: hi,
	}
}

func (p Params) validate() error {
	if p.N < 1 {
		return fmt.Errorf("firefly: population %d < 1", p.N)
	}
	if p.Dims < 1 {
		return fmt.Errorf("firefly: dims %d < 1", p.Dims)
	}
	if p.Hi <= p.Lo {
		return fmt.Errorf("firefly: empty search box [%v,%v]", p.Lo, p.Hi)
	}
	if p.Iterations < 0 {
		return fmt.Errorf("firefly: negative iterations")
	}
	if p.EtaDecay <= 0 || p.EtaDecay > 1 {
		return fmt.Errorf("firefly: EtaDecay %v outside (0,1]", p.EtaDecay)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	// Best is the brightest position found.
	Best []float64
	// BestIntensity is the objective value at Best.
	BestIntensity float64
	// Interactions counts pairwise attraction evaluations — the quantity
	// that separates the O(n²) baseline from the O(n log n) variant.
	Interactions uint64
	// Evaluations counts objective evaluations.
	Evaluations uint64
	// Iterations is the number of generations executed.
	Iterations int
}

type population struct {
	pos       [][]float64
	intensity []float64
	obj       Objective
	src       *xrand.Stream
	p         Params
	evals     uint64
}

func newPopulation(p Params, obj Objective, src *xrand.Stream) *population {
	pop := &population{obj: obj, src: src, p: p}
	pop.pos = make([][]float64, p.N)
	pop.intensity = make([]float64, p.N)
	for i := range pop.pos {
		x := make([]float64, p.Dims)
		for d := range x {
			x[d] = src.Uniform(p.Lo, p.Hi)
		}
		pop.pos[i] = x
		pop.intensity[i] = obj(x)
		pop.evals++
	}
	return pop
}

// move applies eq. (13) to firefly i pulled toward firefly j.
func (pop *population) move(i, j int, eta float64) {
	xi, xj := pop.pos[i], pop.pos[j]
	var r2 float64
	for d := range xi {
		diff := xj[d] - xi[d]
		r2 += diff * diff
	}
	attract := pop.p.K * math.Exp(-pop.p.Gamma*r2)
	for d := range xi {
		xi[d] += attract*(xj[d]-xi[d]) + eta*pop.src.Norm()
		if xi[d] < pop.p.Lo {
			xi[d] = pop.p.Lo
		}
		if xi[d] > pop.p.Hi {
			xi[d] = pop.p.Hi
		}
	}
	pop.intensity[i] = pop.obj(xi)
	pop.evals++
}

func (pop *population) best() (int, float64) {
	bi, bv := 0, pop.intensity[0]
	for i, v := range pop.intensity {
		if v > bv {
			bi, bv = i, v
		}
	}
	return bi, bv
}

// Run executes the basic Algorithm 3: the full double loop, O(n²)
// interactions per iteration.
func Run(p Params, obj Objective, src *xrand.Stream) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	pop := newPopulation(p, obj, src)
	var res Result
	eta := p.Eta
	for it := 0; it < p.Iterations; it++ {
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if i == j {
					continue
				}
				res.Interactions++
				// Algorithm 3 line 9: if I_j > I_i, move i toward j.
				if pop.intensity[j] > pop.intensity[i] {
					pop.move(i, j, eta)
				}
			}
		}
		eta *= p.EtaDecay
		res.Iterations++
	}
	bi, bv := pop.best()
	res.Best = append([]float64(nil), pop.pos[bi]...)
	res.BestIntensity = bv
	res.Evaluations = pop.evals
	return res, nil
}

// RunOrdered executes the paper's improved variant: fireflies are kept
// sorted by intensity (Algorithm 3 line 5); each firefly finds the set of
// brighter fireflies by binary search over the order (O(log n)) and moves
// once toward one of them (the brightest, plus a random brighter one for
// diversity), giving O(n log n) interactions per iteration.
func RunOrdered(p Params, obj Objective, src *xrand.Stream) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	pop := newPopulation(p, obj, src)
	var res Result
	eta := p.Eta
	order := make([]int, p.N) // indices sorted by ascending intensity
	for it := 0; it < p.Iterations; it++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return pop.intensity[order[a]] < pop.intensity[order[b]]
		})
		snapshot := make([]float64, p.N)
		for r, idx := range order {
			snapshot[r] = pop.intensity[idx]
		}
		for r, idx := range order {
			// Binary search (charged as log2 n interactions) for
			// the first rank strictly brighter than this firefly.
			res.Interactions += log2Ceil(p.N)
			first := sort.SearchFloat64s(snapshot, pop.intensity[idx])
			for first < p.N && snapshot[first] <= pop.intensity[idx] {
				first++
			}
			if first >= p.N {
				continue // already the brightest
			}
			// Move toward the brightest...
			pop.move(idx, order[p.N-1], eta)
			res.Interactions++
			// ...and toward one random brighter firefly.
			if first < p.N-1 {
				pick := first + src.Intn(p.N-first)
				if order[pick] != idx {
					pop.move(idx, order[pick], eta)
					res.Interactions++
				}
			}
			_ = r
		}
		eta *= p.EtaDecay
		res.Iterations++
	}
	bi, bv := pop.best()
	res.Best = append([]float64(nil), pop.pos[bi]...)
	res.BestIntensity = bv
	res.Evaluations = pop.evals
	return res, nil
}

func log2Ceil(n int) uint64 {
	if n <= 1 {
		return 1
	}
	return uint64(math.Ceil(math.Log2(float64(n))))
}

// Sphere returns the classic sphere test objective centred at c (maximum 0
// at x = c, negative elsewhere): f(x) = -Σ (x_d − c_d)².
func Sphere(c []float64) Objective {
	return func(x []float64) float64 {
		var s float64
		for d := range x {
			diff := x[d] - c[d]
			s += diff * diff
		}
		return -s
	}
}
