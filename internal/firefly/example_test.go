package firefly_test

import (
	"fmt"

	"repro/internal/firefly"
	"repro/internal/xrand"
)

// ExampleRunOrdered optimizes the sphere function with the paper's
// O(n log n) ordered variant of Algorithm 3.
func ExampleRunOrdered() {
	p := firefly.DefaultParams(30, 2, -10, 10)
	p.Iterations = 120
	res, err := firefly.RunOrdered(p, firefly.Sphere([]float64{2, -3}), xrand.NewStream(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("found the optimum:", res.BestIntensity > -0.5)
	// Output: found the optimum: true
}

// ExampleRun_interactions shows the complexity gap the paper claims: the
// basic double loop performs n(n−1) pairwise interactions per iteration.
func ExampleRun_interactions() {
	p := firefly.DefaultParams(32, 2, -5, 5)
	p.Iterations = 1
	res, _ := firefly.Run(p, firefly.Sphere([]float64{0, 0}), xrand.NewStream(2))
	fmt.Println(res.Interactions)
	// Output: 992
}
