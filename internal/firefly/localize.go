package firefly

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/xrand"
)

// RangeObservation is one RSSI-derived distance measurement toward a peer
// whose (estimated) position is known. Localization is what turns the
// paper's RSSI ranging into "efficient expected location of [the] other
// device to move in right direction".
type RangeObservation struct {
	// Anchor is the peer's position estimate.
	Anchor geo.Point
	// Distance is the RSSI-estimated distance to that peer in metres.
	Distance float64
}

// Localize estimates a device's 2-D position from ranging observations by
// running the firefly search over the squared residual objective
// f(x) = −Σ (|x − anchor_i| − d_i)². At least three non-collinear anchors
// are needed for an unambiguous fix; with fewer the brightest residual
// minimum is still returned, but may be one of several.
func Localize(obs []RangeObservation, area geo.Rect, src *xrand.Stream) (geo.Point, error) {
	if len(obs) == 0 {
		return geo.Point{}, fmt.Errorf("firefly: no ranging observations")
	}
	objective := func(x []float64) float64 {
		p := geo.Point{X: x[0], Y: x[1]}
		var s float64
		for _, o := range obs {
			r := p.Dist(o.Anchor) - o.Distance
			s += r * r
		}
		return -s
	}
	lo := area.MinX
	if area.MinY < lo {
		lo = area.MinY
	}
	hi := area.MaxX
	if area.MaxY > hi {
		hi = area.MaxY
	}
	p := DefaultParams(25, 2, lo, hi)
	p.Iterations = 60
	res, err := RunOrdered(p, objective, src)
	if err != nil {
		return geo.Point{}, err
	}
	return area.Clamp(geo.Point{X: res.Best[0], Y: res.Best[1]}), nil
}
