package firefly

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/xrand"
)

// RunSynchronous is the parallel form of the ordered algorithm, after the
// GPU formulation of Husselmann & Hawick that the paper cites as [22]: each
// iteration every firefly computes its move against a *frozen snapshot* of
// the population (positions and intensities from the start of the
// iteration), so all moves are independent and evaluate concurrently on a
// worker pool. Updates are applied together at the iteration barrier.
//
// Each firefly draws its randomization term from its own named stream, so
// the result is bit-identical for any worker count — the property the
// sweep harness relies on everywhere else in this repository.
//
// Synchronous update changes the trajectory relative to the sequential
// in-place algorithm (as it does on GPUs); both find the same optima on
// well-behaved objectives, and the tests pin that.
func RunSynchronous(p Params, obj Objective, streams *xrand.Streams, workers int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > p.N {
		workers = p.N
	}

	// Initial population from the factory's init stream.
	init := streams.Get("init")
	pos := make([][]float64, p.N)
	intensity := make([]float64, p.N)
	for i := range pos {
		x := make([]float64, p.Dims)
		for d := range x {
			x[d] = init.Uniform(p.Lo, p.Hi)
		}
		pos[i] = x
		intensity[i] = obj(x)
	}
	var res Result
	res.Evaluations = uint64(p.N)

	perFly := make([]*xrand.Stream, p.N)
	for i := range perFly {
		perFly[i] = streams.Get(fmt.Sprintf("fly-%d", i))
	}

	newPos := make([][]float64, p.N)
	newIntensity := make([]float64, p.N)
	order := make([]int, p.N)
	snapshot := make([]float64, p.N)
	interactions := make([]uint64, p.N) // per-fly, summed at the barrier
	evals := make([]uint64, p.N)

	eta := p.Eta
	for it := 0; it < p.Iterations; it++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return intensity[order[a]] < intensity[order[b]] })
		for r, idx := range order {
			snapshot[r] = intensity[idx]
			_ = r
		}
		brightest := order[p.N-1]

		var wg sync.WaitGroup
		chunk := (p.N + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > p.N {
				hi = p.N
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for r := lo; r < hi; r++ {
					idx := order[r]
					interactions[idx] += log2Ceil(p.N)
					first := sort.SearchFloat64s(snapshot, intensity[idx])
					for first < p.N && snapshot[first] <= intensity[idx] {
						first++
					}
					if first >= p.N {
						// Already the brightest: keep position.
						newPos[idx] = append(newPos[idx][:0], pos[idx]...)
						newIntensity[idx] = intensity[idx]
						continue
					}
					x := append(newPos[idx][:0], pos[idx]...)
					moveToward(x, pos[brightest], p, eta, perFly[idx])
					interactions[idx]++
					if first < p.N-1 {
						pick := first + perFly[idx].Intn(p.N-first)
						if order[pick] != idx {
							moveToward(x, pos[order[pick]], p, eta, perFly[idx])
							interactions[idx]++
						}
					}
					newPos[idx] = x
					newIntensity[idx] = obj(x)
					evals[idx]++
				}
			}(lo, hi)
		}
		wg.Wait()
		pos, newPos = newPos, pos
		intensity, newIntensity = newIntensity, intensity
		eta *= p.EtaDecay
		res.Iterations++
	}

	for i := 0; i < p.N; i++ {
		res.Interactions += interactions[i]
		res.Evaluations += evals[i]
	}
	bi := 0
	for i, v := range intensity {
		if v > intensity[bi] {
			bi = i
		}
	}
	res.Best = append([]float64(nil), pos[bi]...)
	res.BestIntensity = intensity[bi]
	return res, nil
}

// moveToward applies eq. (13) to x pulled toward target, drawing the
// randomization vector from src.
func moveToward(x, target []float64, p Params, eta float64, src *xrand.Stream) {
	var r2 float64
	for d := range x {
		diff := target[d] - x[d]
		r2 += diff * diff
	}
	attract := p.K * math.Exp(-p.Gamma*r2)
	for d := range x {
		x[d] += attract*(target[d]-x[d]) + eta*src.Norm()
		if x[d] < p.Lo {
			x[d] = p.Lo
		}
		if x[d] > p.Hi {
			x[d] = p.Hi
		}
	}
}
