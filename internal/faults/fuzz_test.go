package faults

import (
	"bytes"
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

// FuzzLoadPlan hammers the schedule parser and the injector built from
// whatever survives validation. Invariants: Read never panics, a validated
// plan always compiles, the pop cursor visits every action exactly once in
// monotone slot order, and Drops stays total-function safe.
func FuzzLoadPlan(f *testing.F) {
	seeds := []string{
		`{"version":1}`,
		`{"version":1,"loss_rate":0.25}`,
		`{"version":1,"actions":[{"kind":"crash","at":500,"device":3},{"kind":"recover","at":900,"device":3}]}`,
		`{"version":1,"actions":[{"kind":"join","at":200,"device":7}]}`,
		`{"version":1,"actions":[{"kind":"clock-jump","at":700,"device":1,"delta":-0.4}]}`,
		`{"version":1,"outages":[{"at":100,"slots":50,"a":2,"b":4},{"at":300,"slots":20,"a":5,"b":-1}]}`,
		`{"version":1,"loss_rate":1,"actions":[{"kind":"crash","at":1,"device":0}],"outages":[{"at":1,"slots":1,"a":0,"b":-1}]}`,
		`{"version":2}`,
		`{"version":1,"actions":[{"kind":"explode","at":5,"device":0}]}`,
		`not json at all`,
		`{}`,
		`{"version":1,"loss_rate":-3}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		const n, maxSlots = 16, 10000
		if err := p.Validate(n, maxSlots); err != nil {
			return
		}
		inj := NewInjector(p, xrand.NewStreams(1).Get("faults"))
		if inj == nil {
			t.Fatal("validated non-nil plan compiled to nil injector")
		}
		for _, d := range inj.InitialDead() {
			if d < 0 || d >= n {
				t.Fatalf("InitialDead id %d outside [0,%d)", d, n)
			}
		}
		popped := 0
		var slot units.Slot
		for {
			at, ok := inj.NextBoundary(slot)
			if !ok {
				break
			}
			if at <= slot || at > maxSlots {
				t.Fatalf("boundary %d not after %d or past cap", at, slot)
			}
			for _, a := range inj.PopDue(at) {
				if units.Slot(a.At) > at {
					t.Fatalf("popped action at %d when stepping %d", a.At, at)
				}
				popped++
			}
			slot = at
		}
		if popped != len(p.Actions) {
			t.Fatalf("popped %d actions, plan has %d", popped, len(p.Actions))
		}
		if inj.Pending() {
			t.Fatal("exhausted schedule still pending")
		}
		inj.Drops(0, 1, 1)
		inj.Drops(n-1, 0, maxSlots)
	})
}
