// Package faults is the deterministic fault-injection layer: a
// schema-versioned, JSON-loadable schedule of membership faults (node
// crashes, recoveries, mid-run joins), clock jumps, burst link outages and a
// per-message loss rate, compiled into an Injector the run engines consult.
//
// Determinism contract: the schedule itself is fixed data, and the only
// random element — the per-message loss draw — comes from a dedicated seeded
// stream consumed in delivery-list order, which the engines already keep
// engine- and worker-count-invariant. A run with a fault plan is therefore
// bit-identical across slot/event engines and worker counts, and a run with
// a nil or empty plan is bit-identical to a run without the faults layer at
// all (no draw ever happens: the loss stream is only touched when
// LossRate > 0).
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// PlanSchema versions the fault-schedule JSON layout; Validate rejects plans
// written by a different schema.
const PlanSchema = 1

// Action kinds. A "join" device is absent from the start of the run and
// powers on at its slot; "recover" re-powers a previously crashed device;
// "clock-jump" shifts a live device's oscillator phase by Delta cycles.
const (
	KindCrash     = "crash"
	KindRecover   = "recover"
	KindJoin      = "join"
	KindClockJump = "clock-jump"
)

// Action is one scheduled membership or clock fault.
type Action struct {
	// Kind is one of KindCrash, KindRecover, KindJoin, KindClockJump.
	Kind string `json:"kind"`
	// At is the slot the action applies (1-based, ≤ the run's slot cap).
	At int64 `json:"at"`
	// Device is the target device id.
	Device int `json:"device"`
	// Delta is the phase shift in cycles for clock-jump actions (may be
	// negative; applied modulo 1). Ignored for other kinds.
	Delta float64 `json:"delta,omitempty"`
}

// Outage is a burst link blockage: for Slots slots starting at At, every
// message on the matched link(s) is dropped. B = -1 matches every link of A
// (a node-level radio blockage); otherwise the (A,B) pair is matched in both
// directions.
type Outage struct {
	At    int64 `json:"at"`
	Slots int64 `json:"slots"`
	A     int   `json:"a"`
	B     int   `json:"b"`
}

// Partition is one scheduled network split: for Slots slots starting at At,
// the devices in Group and the rest of the network cannot hear each other —
// every message with exactly one endpoint in Group drops, in both
// directions — while traffic within either side flows normally. Merge
// handshakes honour the same split (Injector.PartitionBlocked), so the
// self-healing protocols fragment and re-join instead of merging across a
// link that cannot carry traffic.
type Partition struct {
	At    int64 `json:"at"`
	Slots int64 `json:"slots"`
	Group []int `json:"group"`
}

// Plan is the complete fault schedule of one run.
type Plan struct {
	// Version must equal PlanSchema.
	Version int `json:"version"`
	// LossRate is the independent per-message drop probability in [0,1]
	// applied to every PS delivery (0 disables the loss draw entirely).
	LossRate float64 `json:"loss_rate,omitempty"`
	// Actions are the scheduled membership/clock faults.
	Actions []Action `json:"actions,omitempty"`
	// Outages are the burst link blockages.
	Outages []Outage `json:"outages,omitempty"`
	// Partitions are the scheduled network splits.
	Partitions []Partition `json:"partitions,omitempty"`
}

// Read decodes a plan from r, rejecting unknown fields so typos in
// hand-written schedules fail loud instead of silently doing nothing.
func Read(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	// Trailing garbage after the plan object is a malformed file.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("faults: trailing data after plan object")
	}
	return &p, nil
}

// Load reads and decodes a plan file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return p, nil
}

// Empty reports whether the plan (possibly nil) schedules nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (p.LossRate == 0 && len(p.Actions) == 0 && len(p.Outages) == 0 && len(p.Partitions) == 0)
}

// Validate checks the plan against a run shape: n devices, maxSlots slot
// cap. It verifies the schema version, every action kind, every id and slot
// range, rejects duplicate (At, Device) actions and multiple joins per
// device, and checks the membership sequence per device is coherent (a
// device cannot recover while alive or crash while already down).
func (p *Plan) Validate(n int, maxSlots int64) error {
	if p == nil {
		return nil
	}
	if p.Version != PlanSchema {
		return fmt.Errorf("faults: plan schema %d, want %d", p.Version, PlanSchema)
	}
	if math.IsNaN(p.LossRate) || p.LossRate < 0 || p.LossRate > 1 {
		return fmt.Errorf("faults: loss_rate %v outside [0,1]", p.LossRate)
	}
	seen := make(map[[2]int64]bool, len(p.Actions))
	joins := make(map[int]bool)
	for i, a := range p.Actions {
		switch a.Kind {
		case KindCrash, KindRecover, KindJoin, KindClockJump:
		default:
			return fmt.Errorf("faults: action %d: unknown kind %q", i, a.Kind)
		}
		if a.At < 1 || a.At > maxSlots {
			return fmt.Errorf("faults: action %d: at=%d outside [1,%d]", i, a.At, maxSlots)
		}
		if a.Device < 0 || a.Device >= n {
			return fmt.Errorf("faults: action %d: device %d outside [0,%d)", i, a.Device, n)
		}
		if a.Kind == KindClockJump {
			if math.IsNaN(a.Delta) || math.IsInf(a.Delta, 0) {
				return fmt.Errorf("faults: action %d: non-finite delta %v", i, a.Delta)
			}
		}
		k := [2]int64{a.At, int64(a.Device)}
		if seen[k] {
			return fmt.Errorf("faults: action %d: duplicate action at slot %d for device %d", i, a.At, a.Device)
		}
		seen[k] = true
		if a.Kind == KindJoin {
			if joins[a.Device] {
				return fmt.Errorf("faults: action %d: device %d joins twice", i, a.Device)
			}
			joins[a.Device] = true
		}
	}
	if err := p.validateMembership(); err != nil {
		return err
	}
	for i, o := range p.Outages {
		if o.Slots < 1 {
			return fmt.Errorf("faults: outage %d: slots=%d < 1", i, o.Slots)
		}
		if o.At < 1 || o.At > maxSlots {
			return fmt.Errorf("faults: outage %d: at=%d outside [1,%d]", i, o.At, maxSlots)
		}
		if o.A < 0 || o.A >= n {
			return fmt.Errorf("faults: outage %d: device a=%d outside [0,%d)", i, o.A, n)
		}
		if o.B != -1 && (o.B < 0 || o.B >= n || o.B == o.A) {
			return fmt.Errorf("faults: outage %d: device b=%d must be -1 or a distinct id in [0,%d)", i, o.B, n)
		}
	}
	for i, pt := range p.Partitions {
		if pt.Slots < 1 {
			return fmt.Errorf("faults: partition %d: slots=%d < 1", i, pt.Slots)
		}
		if pt.At < 1 || pt.At > maxSlots {
			return fmt.Errorf("faults: partition %d: at=%d outside [1,%d]", i, pt.At, maxSlots)
		}
		if len(pt.Group) == 0 {
			return fmt.Errorf("faults: partition %d: empty group", i)
		}
		if len(pt.Group) >= n {
			return fmt.Errorf("faults: partition %d: group of %d does not split %d devices", i, len(pt.Group), n)
		}
		seenDev := make(map[int]bool, len(pt.Group))
		for _, id := range pt.Group {
			if id < 0 || id >= n {
				return fmt.Errorf("faults: partition %d: device %d outside [0,%d)", i, id, n)
			}
			if seenDev[id] {
				return fmt.Errorf("faults: partition %d: duplicate device %d", i, id)
			}
			seenDev[id] = true
		}
	}
	return nil
}

// validateMembership replays each device's crash/recover/join sequence in
// slot order and rejects incoherent transitions.
func (p *Plan) validateMembership() error {
	byDev := make(map[int][]Action)
	for _, a := range p.Actions {
		if a.Kind == KindClockJump {
			continue
		}
		byDev[a.Device] = append(byDev[a.Device], a)
	}
	for dev, acts := range byDev {
		sort.Slice(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
		alive := true
		for _, a := range acts {
			if a.Kind == KindJoin && a.At != acts[0].At {
				return fmt.Errorf("faults: device %d: join must be its first membership action", dev)
			}
		}
		if acts[0].Kind == KindJoin {
			alive = false // absent until the join fires
		}
		for _, a := range acts {
			switch a.Kind {
			case KindCrash:
				if !alive {
					return fmt.Errorf("faults: device %d: crash at slot %d while already down", dev, a.At)
				}
				alive = false
			case KindRecover, KindJoin:
				if alive {
					return fmt.Errorf("faults: device %d: %s at slot %d while already up", dev, a.Kind, a.At)
				}
				alive = true
			}
		}
	}
	return nil
}

// String summarizes the plan for logs and CLI output.
func (p *Plan) String() string {
	if p.Empty() {
		return "faults: empty plan"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d actions, %d outages", len(p.Actions), len(p.Outages))
	if len(p.Partitions) > 0 {
		fmt.Fprintf(&b, ", %d partitions", len(p.Partitions))
	}
	if p.LossRate > 0 {
		fmt.Fprintf(&b, ", loss %.3f", p.LossRate)
	}
	return b.String()
}
