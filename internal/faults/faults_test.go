package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

func validPlan() *Plan {
	return &Plan{
		Version:  PlanSchema,
		LossRate: 0.1,
		Actions: []Action{
			{Kind: KindCrash, At: 500, Device: 3},
			{Kind: KindRecover, At: 900, Device: 3},
			{Kind: KindJoin, At: 200, Device: 7},
			{Kind: KindClockJump, At: 700, Device: 1, Delta: 0.25},
		},
		Outages: []Outage{
			{At: 100, Slots: 50, A: 2, B: 4},
			{At: 300, Slots: 20, A: 5, B: -1},
		},
	}
}

func TestPlanValidate(t *testing.T) {
	if err := validPlan().Validate(10, 1000); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (*Plan)(nil).Validate(10, 1000); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"bad schema", func(p *Plan) { p.Version = PlanSchema + 1 }},
		{"loss above 1", func(p *Plan) { p.LossRate = 1.5 }},
		{"loss negative", func(p *Plan) { p.LossRate = -0.1 }},
		{"unknown kind", func(p *Plan) { p.Actions[0].Kind = "explode" }},
		{"at zero", func(p *Plan) { p.Actions[0].At = 0 }},
		{"at past cap", func(p *Plan) { p.Actions[0].At = 1001 }},
		{"device negative", func(p *Plan) { p.Actions[0].Device = -1 }},
		{"device out of range", func(p *Plan) { p.Actions[0].Device = 10 }},
		{"duplicate action", func(p *Plan) {
			p.Actions = append(p.Actions, Action{Kind: KindClockJump, At: 500, Device: 3})
		}},
		{"double join", func(p *Plan) {
			p.Actions = append(p.Actions, Action{Kind: KindJoin, At: 950, Device: 7})
		}},
		{"crash while down", func(p *Plan) {
			p.Actions = append(p.Actions, Action{Kind: KindCrash, At: 600, Device: 3})
		}},
		{"recover while up", func(p *Plan) {
			p.Actions = append(p.Actions, Action{Kind: KindRecover, At: 100, Device: 2})
		}},
		{"join after crash", func(p *Plan) {
			p.Actions = append(p.Actions,
				Action{Kind: KindCrash, At: 50, Device: 8},
				Action{Kind: KindJoin, At: 400, Device: 8})
		}},
		{"outage zero slots", func(p *Plan) { p.Outages[0].Slots = 0 }},
		{"outage at past cap", func(p *Plan) { p.Outages[0].At = 2000 }},
		{"outage bad a", func(p *Plan) { p.Outages[0].A = 11 }},
		{"outage self link", func(p *Plan) { p.Outages[0].B = p.Outages[0].A }},
		{"outage bad b", func(p *Plan) { p.Outages[0].B = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validPlan()
			tc.mutate(p)
			if err := p.Validate(10, 1000); err == nil {
				t.Errorf("%s: plan accepted, want error", tc.name)
			}
		})
	}
}

func TestReadRejectsUnknownFieldsAndGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version":1,"lossy_rate":0.5}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1} {"version":1}`)); err == nil {
		t.Error("trailing data accepted")
	}
	p, err := Read(strings.NewReader(`{"version":1,"actions":[{"kind":"crash","at":5,"device":0}]}`))
	if err != nil {
		t.Fatalf("valid JSON rejected: %v", err)
	}
	if len(p.Actions) != 1 || p.Actions[0].Kind != KindCrash {
		t.Errorf("parsed plan %+v, want one crash action", p)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"loss_rate":0.2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.LossRate != 0.2 {
		t.Errorf("loss rate %v, want 0.2", p.LossRate)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInjectorScheduling(t *testing.T) {
	inj := NewInjector(validPlan(), xrand.NewStreams(1).Get("faults"))

	dead := inj.InitialDead()
	if len(dead) != 1 || dead[0] != 7 {
		t.Errorf("InitialDead = %v, want [7]", dead)
	}

	if at, ok := inj.NextBoundary(0); !ok || at != 200 {
		t.Errorf("NextBoundary(0) = %d,%v, want 200,true", at, ok)
	}
	if due := inj.PopDue(100); len(due) != 0 {
		t.Errorf("PopDue(100) = %v, want none", due)
	}
	due := inj.PopDue(700)
	if len(due) != 3 || due[0].Kind != KindJoin || due[1].Kind != KindCrash || due[2].Kind != KindClockJump {
		t.Errorf("PopDue(700) = %v, want join@200, crash@500, clock-jump@700", due)
	}
	if at, ok := inj.NextBoundary(700); !ok || at != 900 {
		t.Errorf("NextBoundary(700) = %d,%v, want 900,true", at, ok)
	}
	if !inj.Pending() {
		t.Error("actions remain but Pending() = false")
	}
	if due := inj.PopDue(900); len(due) != 1 || due[0].Kind != KindRecover {
		t.Errorf("PopDue(900) = %v, want the recover", due)
	}
	if inj.Pending() {
		t.Error("all actions popped but Pending() = true")
	}
	if _, ok := inj.NextBoundary(900); ok {
		t.Error("NextBoundary after exhaustion reported a slot")
	}
}

func TestInjectorDrops(t *testing.T) {
	p := &Plan{Version: PlanSchema, Outages: []Outage{
		{At: 100, Slots: 50, A: 2, B: 4},
		{At: 300, Slots: 20, A: 5, B: -1},
	}}
	inj := NewInjector(p, xrand.NewStreams(1).Get("faults"))
	if !inj.Filters() {
		t.Fatal("plan with outages must filter")
	}
	check := func(from, to int, slot units.Slot, want bool) {
		t.Helper()
		if got := inj.Drops(from, to, slot); got != want {
			t.Errorf("Drops(%d,%d,%d) = %v, want %v", from, to, slot, got, want)
		}
	}
	check(2, 4, 120, true)  // pair outage, forward
	check(4, 2, 120, true)  // pair outage, reverse
	check(2, 4, 99, false)  // before window
	check(2, 4, 150, false) // window is [At, At+Slots)
	check(2, 3, 120, false) // other link unaffected
	check(5, 0, 310, true)  // node-level outage: any link of 5
	check(1, 5, 310, true)
	check(1, 0, 310, false)

	// Without loss, no draws: the stream is untouched and results are
	// pure schedule lookups.
	empty := NewInjector(&Plan{Version: PlanSchema}, xrand.NewStreams(1).Get("faults"))
	if empty.Filters() {
		t.Error("empty plan must not filter")
	}

	// With loss 1.0 every delivery drops; with 0 none do.
	always := NewInjector(&Plan{Version: PlanSchema, LossRate: 1}, xrand.NewStreams(1).Get("faults"))
	if !always.Drops(0, 1, 10) {
		t.Error("loss rate 1 kept a delivery")
	}
}

func TestNilInjector(t *testing.T) {
	if inj := NewInjector(nil, nil); inj != nil {
		t.Error("nil plan must compile to a nil injector")
	}
}
