package faults

import (
	"sort"

	"repro/internal/units"
	"repro/internal/xrand"
)

// Injector is a validated plan compiled for consumption by a run engine:
// actions sorted into a deterministic application order, a cursor that pops
// due actions exactly once, and the seeded loss stream. Build one per run
// (the cursor is run state); a nil *Injector disables the layer entirely.
type Injector struct {
	actions []Action // sorted by (At, Device)
	cursor  int
	outages []Outage
	loss    float64
	lossSrc *xrand.Stream
}

// NewInjector compiles a plan. lossSrc is the dedicated "faults" stream; it
// is only ever drawn from when the plan's LossRate is positive, so an empty
// or loss-free plan leaves every other stream's draw sequence untouched.
func NewInjector(p *Plan, lossSrc *xrand.Stream) *Injector {
	if p == nil {
		return nil
	}
	inj := &Injector{
		actions: append([]Action(nil), p.Actions...),
		outages: append([]Outage(nil), p.Outages...),
		loss:    p.LossRate,
		lossSrc: lossSrc,
	}
	sort.Slice(inj.actions, func(i, j int) bool {
		if inj.actions[i].At != inj.actions[j].At {
			return inj.actions[i].At < inj.actions[j].At
		}
		return inj.actions[i].Device < inj.actions[j].Device
	})
	return inj
}

// InitialDead returns the devices that are absent at slot 0 (those whose
// first membership action is a join).
func (inj *Injector) InitialDead() []int {
	var out []int
	seen := make(map[int]bool)
	for _, a := range inj.actions {
		switch a.Kind {
		case KindJoin:
			if !seen[a.Device] {
				out = append(out, a.Device)
			}
			seen[a.Device] = true
		case KindCrash, KindRecover:
			// An earlier crash/recover means the device started alive.
			seen[a.Device] = true
		}
	}
	return out
}

// NextBoundary returns the slot of the earliest not-yet-applied action after
// `after`, for folding into the event engine's next-step horizon. Outages
// and loss need no boundaries: they only filter deliveries at slots where
// something fires anyway.
func (inj *Injector) NextBoundary(after units.Slot) (units.Slot, bool) {
	for i := inj.cursor; i < len(inj.actions); i++ {
		if at := units.Slot(inj.actions[i].At); at > after {
			return at, true
		}
	}
	return 0, false
}

// PopDue returns the actions due at or before slot, in (At, Device) order,
// advancing the cursor past them. The returned slice aliases the injector's
// storage and is valid until the next call.
func (inj *Injector) PopDue(slot units.Slot) []Action {
	start := inj.cursor
	for inj.cursor < len(inj.actions) && units.Slot(inj.actions[inj.cursor].At) <= slot {
		inj.cursor++
	}
	return inj.actions[start:inj.cursor]
}

// Pending reports whether scheduled actions remain unapplied.
func (inj *Injector) Pending() bool { return inj.cursor < len(inj.actions) }

// Cursor returns the number of actions already applied — the injector's only
// mutable state (the loss stream's position is tracked by the stream factory).
func (inj *Injector) Cursor() int { return inj.cursor }

// SetCursor repositions the action cursor; out-of-range values are clamped.
// Used when restoring a checkpoint over a freshly compiled plan.
func (inj *Injector) SetCursor(c int) {
	if c < 0 {
		c = 0
	}
	if c > len(inj.actions) {
		c = len(inj.actions)
	}
	inj.cursor = c
}

// Filters reports whether the injector can ever drop a delivery — false for
// plans with neither outages nor loss, letting the engines skip the
// per-delivery filter entirely (the faults-off hot path).
func (inj *Injector) Filters() bool { return inj.loss > 0 || len(inj.outages) > 0 }

// Drops decides whether the delivery from→to at slot is lost. Outage
// matching is checked first (pure schedule lookup, no randomness); only
// then, and only when LossRate > 0, is the loss stream drawn — once per
// surviving delivery, in delivery-list order, which the engines keep
// invariant across engine kind and worker count.
func (inj *Injector) Drops(from, to int, slot units.Slot) bool {
	for _, o := range inj.outages {
		if int64(slot) < o.At || int64(slot) >= o.At+o.Slots {
			continue
		}
		if o.B == -1 {
			if from == o.A || to == o.A {
				return true
			}
			continue
		}
		if (from == o.A && to == o.B) || (from == o.B && to == o.A) {
			return true
		}
	}
	if inj.loss > 0 {
		return inj.lossSrc.Float64() < inj.loss
	}
	return false
}
