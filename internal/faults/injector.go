package faults

import (
	"sort"

	"repro/internal/units"
	"repro/internal/xrand"
)

// Injector is a validated plan compiled for consumption by a run engine:
// actions sorted into a deterministic application order, a cursor that pops
// due actions exactly once, and the seeded loss stream. Build one per run
// (the cursor is run state); a nil *Injector disables the layer entirely.
type Injector struct {
	actions []Action // sorted by (At, Device)
	cursor  int
	outages []Outage
	// partitions are the plan's splits compiled for O(1) side lookup.
	partitions []partition
	loss       float64
	lossSrc    *xrand.Stream
}

// partition is one compiled network split over [at, end).
type partition struct {
	at, end int64
	in      map[int]bool
}

// NewInjector compiles a plan. lossSrc is the dedicated "faults" stream; it
// is only ever drawn from when the plan's LossRate is positive, so an empty
// or loss-free plan leaves every other stream's draw sequence untouched.
func NewInjector(p *Plan, lossSrc *xrand.Stream) *Injector {
	if p == nil {
		return nil
	}
	inj := &Injector{
		actions: append([]Action(nil), p.Actions...),
		outages: append([]Outage(nil), p.Outages...),
		loss:    p.LossRate,
		lossSrc: lossSrc,
	}
	for _, pt := range p.Partitions {
		in := make(map[int]bool, len(pt.Group))
		for _, id := range pt.Group {
			in[id] = true
		}
		inj.partitions = append(inj.partitions, partition{at: pt.At, end: pt.At + pt.Slots, in: in})
	}
	sort.Slice(inj.actions, func(i, j int) bool {
		if inj.actions[i].At != inj.actions[j].At {
			return inj.actions[i].At < inj.actions[j].At
		}
		return inj.actions[i].Device < inj.actions[j].Device
	})
	return inj
}

// InitialDead returns the devices that are absent at slot 0 (those whose
// first membership action is a join).
func (inj *Injector) InitialDead() []int {
	var out []int
	seen := make(map[int]bool)
	for _, a := range inj.actions {
		switch a.Kind {
		case KindJoin:
			if !seen[a.Device] {
				out = append(out, a.Device)
			}
			seen[a.Device] = true
		case KindCrash, KindRecover:
			// An earlier crash/recover means the device started alive.
			seen[a.Device] = true
		}
	}
	return out
}

// NextBoundary returns the slot of the earliest not-yet-applied action or
// partition edge (start or lift) after `after`, for folding into the event
// engine's next-step horizon. Outages and loss need no boundaries: they only
// filter deliveries at slots where something fires anyway. Partition edges
// do — the protocols' repair scheduling observes the split starting and
// lifting even when no oscillator fires at those slots.
func (inj *Injector) NextBoundary(after units.Slot) (units.Slot, bool) {
	var best units.Slot
	ok := false
	for i := inj.cursor; i < len(inj.actions); i++ {
		if at := units.Slot(inj.actions[i].At); at > after {
			best, ok = at, true
			break
		}
	}
	for _, pt := range inj.partitions {
		for _, edge := range [2]int64{pt.at, pt.end} {
			if at := units.Slot(edge); at > after && (!ok || at < best) {
				best, ok = at, true
			}
		}
	}
	return best, ok
}

// PopDue returns the actions due at or before slot, in (At, Device) order,
// advancing the cursor past them. The returned slice aliases the injector's
// storage and is valid until the next call.
func (inj *Injector) PopDue(slot units.Slot) []Action {
	start := inj.cursor
	for inj.cursor < len(inj.actions) && units.Slot(inj.actions[inj.cursor].At) <= slot {
		inj.cursor++
	}
	return inj.actions[start:inj.cursor]
}

// Pending reports whether scheduled actions remain unapplied.
func (inj *Injector) Pending() bool { return inj.cursor < len(inj.actions) }

// Cursor returns the number of actions already applied — the injector's only
// mutable state (the loss stream's position is tracked by the stream factory).
func (inj *Injector) Cursor() int { return inj.cursor }

// SetCursor repositions the action cursor; out-of-range values are clamped.
// Used when restoring a checkpoint over a freshly compiled plan.
func (inj *Injector) SetCursor(c int) {
	if c < 0 {
		c = 0
	}
	if c > len(inj.actions) {
		c = len(inj.actions)
	}
	inj.cursor = c
}

// Filters reports whether the injector can ever drop a delivery — false for
// plans with neither outages, partitions nor loss, letting the engines skip
// the per-delivery filter entirely (the faults-off hot path).
func (inj *Injector) Filters() bool {
	return inj.loss > 0 || len(inj.outages) > 0 || len(inj.partitions) > 0
}

// Drops decides whether the delivery from→to at slot is lost. Outage and
// partition matching are checked first (pure schedule lookups, no
// randomness); only then, and only when LossRate > 0, is the loss stream
// drawn — once per surviving delivery, in delivery-list order, which the
// engines keep invariant across engine kind and worker count.
func (inj *Injector) Drops(from, to int, slot units.Slot) bool {
	for _, o := range inj.outages {
		if int64(slot) < o.At || int64(slot) >= o.At+o.Slots {
			continue
		}
		if o.B == -1 {
			if from == o.A || to == o.A {
				return true
			}
			continue
		}
		if (from == o.A && to == o.B) || (from == o.B && to == o.A) {
			return true
		}
	}
	if inj.PartitionBlocked(from, to, int64(slot)) {
		return true
	}
	if inj.loss > 0 {
		return inj.lossSrc.Float64() < inj.loss
	}
	return false
}

// PartitionBlocked reports whether an active partition separates from and to
// at slot — the link cannot carry traffic in either direction. Safe on a nil
// injector.
func (inj *Injector) PartitionBlocked(from, to int, slot int64) bool {
	if inj == nil {
		return false
	}
	for _, pt := range inj.partitions {
		if slot >= pt.at && slot < pt.end && pt.in[from] != pt.in[to] {
			return true
		}
	}
	return false
}

// PartitionActive reports whether any partition is splitting the network at
// slot. Safe on a nil injector.
func (inj *Injector) PartitionActive(slot units.Slot) bool {
	if inj == nil {
		return false
	}
	for _, pt := range inj.partitions {
		if int64(slot) >= pt.at && int64(slot) < pt.end {
			return true
		}
	}
	return false
}

// PartitionEnd returns the first slot at which every scheduled partition has
// lifted (0 when the plan has none). The self-healing protocols refuse to
// declare a run finished before it: a network split mid-run must be
// observed healing, not raced past. Safe on a nil injector.
func (inj *Injector) PartitionEnd() units.Slot {
	if inj == nil {
		return 0
	}
	var end int64
	for _, pt := range inj.partitions {
		if pt.end > end {
			end = pt.end
		}
	}
	return units.Slot(end)
}
