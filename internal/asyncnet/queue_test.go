package asyncnet

import (
	"encoding/json"
	"testing"

	"repro/internal/rach"
	"repro/internal/units"
	"repro/internal/xrand"
)

func del(from, to int, slot units.Slot) rach.Delivery {
	return rach.Delivery{To: to, Msg: rach.Message{
		From: from, Kind: rach.KindPulse, Slot: slot, RSSI: -60,
	}}
}

func TestDegeneratePassThrough(t *testing.T) {
	src := xrand.NewStream(1)
	for _, p := range []*Plan{nil, {Version: PlanSchema}, {Version: PlanSchema, Reorder: true}} {
		q := NewQueue(p, src)
		if !q.Degenerate() {
			t.Fatalf("queue for %+v not degenerate", p)
		}
		in := []rach.Delivery{del(0, 1, 5), del(2, 1, 5)}
		out := q.Cycle(in, 5)
		if len(out) != 2 || &out[0] != &in[0] {
			t.Fatal("degenerate Cycle must return the input slice untouched")
		}
		if src.Pos() != 0 {
			t.Fatal("degenerate queue consumed adversary draws")
		}
		if q.InFlight() != 0 || q.HasDue(1000) {
			t.Fatal("degenerate queue buffered a message")
		}
	}
}

func TestPureShiftPreservesOrderAndDraws(t *testing.T) {
	src := xrand.NewStream(1)
	q := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 3}, src)
	in := []rach.Delivery{del(0, 2, 10), del(1, 2, 10), del(0, 3, 10)}
	if out := q.Cycle(in, 10); len(out) != 0 {
		t.Fatalf("pure shift delivered %d messages in the send slot", len(out))
	}
	if q.InFlight() != 3 {
		t.Fatalf("in flight %d, want 3", q.InFlight())
	}
	if q.HasDue(12) {
		t.Fatal("due before the shift elapsed")
	}
	if at, ok := q.NextDue(10); !ok || at != 13 {
		t.Fatalf("NextDue = %d,%v, want 13,true", at, ok)
	}
	out := q.Cycle(nil, 13)
	if len(out) != 3 {
		t.Fatalf("drained %d, want 3", len(out))
	}
	// (receiver, sequence) order: both receiver-2 messages in send order,
	// then receiver 3.
	if out[0].Msg.From != 0 || out[0].To != 2 || out[1].Msg.From != 1 || out[2].To != 3 {
		t.Fatalf("drain order %v", out)
	}
	// Without Reorder, loss or duplication the adversary consumes no draws:
	// the stream cursor is independent of message volume.
	if src.Pos() != 0 {
		t.Fatalf("pure shift consumed %d draws", src.Pos())
	}
	c := q.Counters()
	if c.Delayed != 3 || c.Peak != 3 || c.Rejected != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestDuplicateRejected(t *testing.T) {
	src := xrand.NewStream(1)
	// DupRate 1 duplicates every message; with a zero reorder window both
	// copies land in the same drain, so the filter must reject each copy.
	q := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 1, Reorder: true, DupRate: 1}, src)
	var got int
	for slot := units.Slot(1); slot <= 5; slot++ {
		got += len(q.Cycle([]rach.Delivery{del(0, 1, slot)}, slot))
	}
	got += len(q.Cycle(nil, 6))
	c := q.Counters()
	if c.Duplicated != 5 {
		t.Fatalf("duplicated %d, want 5", c.Duplicated)
	}
	// Every send eventually delivers exactly once: 5 accepted, 5 rejected.
	if got != 5 || c.Rejected != 5 {
		t.Fatalf("accepted %d rejected %d, want 5/5", got, c.Rejected)
	}
}

func TestStaleRejected(t *testing.T) {
	src := xrand.NewStream(1)
	q := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 4, Reorder: true}, src)
	// Hand-place three pulses of one link: the slot-2 pulse arrives first,
	// a late replay of slot 2 next, and a slot-1 pulse last. The filter
	// must accept the first, reject the replayed (sender, epoch) pair, and
	// pass the older-but-fresh epoch through — absorption echoes
	// legitimately re-announce epochs below the sender's previous
	// transmission, so hardening against genuinely old epochs lives in the
	// oscillator's idempotent min-epoch rule, not in the transport.
	q.push(entry{At: 2, Seq: 0, Del: del(0, 1, 2)})
	q.push(entry{At: 3, Seq: 1, Del: del(0, 1, 2)})
	q.push(entry{At: 4, Seq: 2, Del: del(0, 1, 1)})
	if out := q.Cycle(nil, 2); len(out) != 1 || out[0].Msg.Slot != 2 {
		t.Fatalf("first drain %v", out)
	}
	if out := q.Cycle(nil, 3); len(out) != 0 {
		t.Fatalf("replayed (sender, epoch) pair delivered: %v", out)
	}
	if out := q.Cycle(nil, 4); len(out) != 1 || out[0].Msg.Slot != 1 {
		t.Fatalf("fresh older epoch dropped: %v", out)
	}
	if c := q.Counters(); c.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", c.Rejected)
	}
}

func TestLossDropsEverything(t *testing.T) {
	src := xrand.NewStream(1)
	q := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 1, LossRate: 1}, src)
	out := q.Cycle([]rach.Delivery{del(0, 1, 1), del(1, 0, 1)}, 1)
	if len(out) != 0 || q.InFlight() != 0 {
		t.Fatalf("lossy queue kept messages: out=%d inflight=%d", len(out), q.InFlight())
	}
	if c := q.Counters(); c.Lost != 2 {
		t.Fatalf("lost %d, want 2", c.Lost)
	}
}

func TestReorderDeterministic(t *testing.T) {
	run := func() []rach.Delivery {
		src := xrand.NewStream(7)
		q := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 5, Reorder: true, DupRate: 0.3}, src)
		var out []rach.Delivery
		for slot := units.Slot(1); slot <= 20; slot++ {
			in := []rach.Delivery{del(0, 1, slot), del(1, 0, slot), del(2, 1, slot)}
			out = append(out, q.Cycle(in, slot)...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	src := xrand.NewStream(3)
	plan := &Plan{Version: PlanSchema, MaxDelaySlots: 6, Reorder: true, DupRate: 0.5}
	q := NewQueue(plan, src)
	for slot := units.Slot(1); slot <= 4; slot++ {
		q.Cycle([]rach.Delivery{del(0, 1, slot), del(1, 2, slot)}, slot)
	}
	if q.InFlight() == 0 {
		t.Fatal("test wants a mid-flight queue; nothing in flight")
	}
	st := q.State()
	raw1, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	q2 := NewQueue(plan, xrand.NewStream(3))
	q2.Restore(st)
	raw2, err := json.Marshal(q2.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) {
		t.Fatalf("state round trip diverged:\n%s\n%s", raw1, raw2)
	}
	// The restored queue must behave identically: drain everything and
	// compare against the original's tail.
	for slot := units.Slot(5); slot <= 12; slot++ {
		a := append([]rach.Delivery(nil), q.Cycle(nil, slot)...)
		b := q2.Cycle(nil, slot)
		if len(a) != len(b) {
			t.Fatalf("slot %d: %d vs %d deliveries", slot, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d delivery %d differs", slot, i)
			}
		}
	}
	if q.InFlight() != 0 || q2.InFlight() != 0 {
		t.Fatal("queues not drained")
	}
}

func TestStateCanonical(t *testing.T) {
	// Two queues holding the same messages pushed in different orders must
	// serialize byte-identically.
	a := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 5}, xrand.NewStream(1))
	b := NewQueue(&Plan{Version: PlanSchema, MaxDelaySlots: 5}, xrand.NewStream(1))
	e1 := entry{At: 4, Seq: 0, Del: del(0, 1, 2)}
	e2 := entry{At: 2, Seq: 1, Del: del(1, 0, 2)}
	a.push(e1)
	a.push(e2)
	b.push(e2)
	b.push(e1)
	a.seq, b.seq = 2, 2
	ra, _ := json.Marshal(a.State())
	rb, _ := json.Marshal(b.State())
	if string(ra) != string(rb) {
		t.Fatalf("canonical state differs:\n%s\n%s", ra, rb)
	}
}
