package asyncnet

import (
	"sort"

	"repro/internal/rach"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Counters aggregates the adversary's observable effects over a run.
type Counters struct {
	// Delayed counts messages enqueued with a non-zero delivery delay.
	Delayed uint64
	// Duplicated counts adversary-injected copies.
	Duplicated uint64
	// Lost counts messages dropped by the transport-loss draw.
	Lost uint64
	// Rejected counts deliveries discarded by the receiver-side
	// duplicate/stale filter (late copies of an already-accepted pulse).
	Rejected uint64
	// Peak is the high-water mark of in-flight messages.
	Peak int
}

// entry is one in-flight message: the resolved delivery, the slot it
// becomes due, and a global enqueue sequence number that makes drain order
// total (and, in the same-slot case, identical to resolver output order).
type entry struct {
	At  units.Slot
	Seq uint64
	Del rach.Delivery
}

// linkKey identifies a directed (sender, receiver) link for the
// duplicate/stale rejection filter.
type linkKey struct {
	From, To int
}

// Queue is the deterministic in-flight message store of one run. It is not
// safe for concurrent use; the engines call it only from the sequential
// phase that follows broadcast resolution.
type Queue struct {
	plan Plan
	src  *xrand.Stream

	inflight []entry
	// minAt caches the exact earliest delivery slot among inflight
	// entries, so the per-slot HasDue/NextDue probes are O(1); it is
	// meaningless while inflight is empty.
	minAt units.Slot
	seq   uint64
	// last holds, per directed link, the epoch stamp of the newest
	// accepted message: the duplicate/stale filter drops a delivery
	// carrying the same (sender, epoch) pair again — the adversary's
	// duplicate copies and any late replay of an epoch the receiver
	// already accepted from that sender. Fresh epochs pass in either
	// direction: absorption-echo traffic legitimately re-announces
	// epochs older than the sender's previous transmission, so the
	// filter keys on epoch equality, not monotonicity; order hardening
	// against genuinely old epochs lives in the oscillator, whose
	// min-epoch adoption rule is idempotent under replay.
	last map[linkKey]units.Slot
	ctr  Counters

	due []entry         // scratch: entries due this drain
	out []rach.Delivery // scratch: drained deliveries
}

// NewQueue builds the queue for a plan. src is the dedicated adversary
// stream; it is only ever touched when the plan schedules a draw, so a
// degenerate plan leaves the stream's cursor untouched forever. A nil plan
// yields a degenerate queue.
func NewQueue(p *Plan, src *xrand.Stream) *Queue {
	q := &Queue{src: src}
	if p != nil {
		q.plan = *p
	} else {
		q.plan.Version = PlanSchema
	}
	if !q.plan.Degenerate() {
		q.last = make(map[linkKey]units.Slot)
	}
	return q
}

// Degenerate reports whether this queue passes every delivery through
// untouched.
func (q *Queue) Degenerate() bool { return q.plan.Degenerate() }

// Counters returns the adversary-effect counters accumulated so far.
func (q *Queue) Counters() Counters { return q.ctr }

// InFlight returns the number of messages currently queued for a future
// slot.
func (q *Queue) InFlight() int { return len(q.inflight) }

// delay draws one message's delivery delay. With reordering the delay is
// uniform over [0, MaxDelaySlots]; otherwise it is the constant bound (no
// draw is consumed, keeping the stream independent of message volume).
func (q *Queue) delay() units.Slot {
	if q.plan.MaxDelaySlots == 0 {
		return 0
	}
	if !q.plan.Reorder {
		return units.Slot(q.plan.MaxDelaySlots)
	}
	return units.Slot(q.src.Intn(q.plan.MaxDelaySlots + 1))
}

// Cycle runs one transport cycle at slot: the freshly resolved deliveries
// (already fault-filtered) are enqueued — each drawing loss, delay and
// duplication in delivery-list order on the adversary stream — and every
// in-flight message due at or before slot is drained, passed through the
// duplicate/stale filter, and returned sorted by (receiver, enqueue
// sequence). The returned slice is owned by the queue and valid until the
// next Cycle.
//
// Degenerate queues return dels untouched: zero draws, zero copies, zero
// reordering — the bit-identity anchor for the lockstep differential suite.
func (q *Queue) Cycle(dels []rach.Delivery, slot units.Slot) []rach.Delivery {
	if q.plan.Degenerate() {
		return dels
	}
	for i := range dels {
		if q.plan.LossRate > 0 && q.src.Float64() < q.plan.LossRate {
			q.ctr.Lost++
			continue
		}
		d := q.delay()
		if d > 0 {
			q.ctr.Delayed++
		}
		q.push(entry{At: slot + d, Seq: q.seq, Del: dels[i]})
		q.seq++
		if q.plan.DupRate > 0 && q.src.Float64() < q.plan.DupRate {
			q.ctr.Duplicated++
			q.push(entry{At: slot + q.delay(), Seq: q.seq, Del: dels[i]})
			q.seq++
		}
	}
	if len(q.inflight) > q.ctr.Peak {
		q.ctr.Peak = len(q.inflight)
	}

	// Split in-flight into due-now and still-pending, re-deriving the
	// exact earliest pending slot on the way.
	due := q.due[:0]
	kept := q.inflight[:0]
	var minAt units.Slot
	for _, e := range q.inflight {
		if e.At <= slot {
			due = append(due, e)
			continue
		}
		if len(kept) == 0 || e.At < minAt {
			minAt = e.At
		}
		kept = append(kept, e)
	}
	q.inflight = kept
	q.minAt = minAt
	q.due = due

	// Drain in (receiver, sequence) order: receiver-contiguous for the
	// sharded engine's run grouping, and within a receiver the enqueue
	// order — which for same-slot traffic is exactly the capture
	// resolver's output order.
	sort.Slice(due, func(i, j int) bool {
		if due[i].Del.To != due[j].Del.To {
			return due[i].Del.To < due[j].Del.To
		}
		return due[i].Seq < due[j].Seq
	})
	out := q.out[:0]
	for _, e := range due {
		k := linkKey{From: e.Del.Msg.From, To: e.Del.To}
		if last, seen := q.last[k]; seen && e.Del.Msg.Slot == last {
			q.ctr.Rejected++
			continue
		}
		q.last[k] = e.Del.Msg.Slot
		out = append(out, e.Del)
	}
	q.out = out
	return out
}

// push enqueues one in-flight entry, maintaining the cached minimum.
func (q *Queue) push(e entry) {
	if len(q.inflight) == 0 || e.At < q.minAt {
		q.minAt = e.At
	}
	q.inflight = append(q.inflight, e)
}

// HasDue reports whether any in-flight message is due at or before slot.
// Engines use it to run a delivery wave on slots with no local fires.
func (q *Queue) HasDue(slot units.Slot) bool {
	return len(q.inflight) > 0 && q.minAt <= slot
}

// NextDue returns the earliest in-flight delivery slot strictly after
// `after`, for horizon folding in the event engine. ok is false when
// nothing is queued.
func (q *Queue) NextDue(after units.Slot) (units.Slot, bool) {
	if len(q.inflight) == 0 {
		return 0, false
	}
	if q.minAt <= after {
		return after + 1, true // overdue: deliver at the next stepped slot
	}
	return q.minAt, true
}

// State is the queue's checkpointable form: every in-flight message, the
// enqueue sequence cursor, the duplicate/stale filter table and the
// counters. The adversary stream's cursor itself is checkpointed with every
// other named stream by the engine's stream-cursor capture.
type State struct {
	Seq      uint64     `json:"seq"`
	InFlight []Flight   `json:"in_flight,omitempty"`
	Accepted []LinkSlot `json:"accepted,omitempty"`
	Counters Counters   `json:"counters"`
}

// Flight is one serialized in-flight message.
type Flight struct {
	At   int64   `json:"at"`
	Seq  uint64  `json:"seq"`
	To   int     `json:"to"`
	From int     `json:"from"`
	Kind int     `json:"kind"`
	Svc  int     `json:"svc"`
	Slot int64   `json:"slot"`
	RSSI float64 `json:"rssi"`
	Code int     `json:"codec"`
}

// LinkSlot is one duplicate-filter entry: the newest accepted send slot of
// a directed link.
type LinkSlot struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	Slot int64 `json:"slot"`
}

// State captures the queue. In-flight messages are emitted in (At, Seq)
// order and the filter table in (From, To) order so the snapshot is
// canonical: two equal queues serialize byte-identically.
func (q *Queue) State() *State {
	st := &State{Seq: q.seq, Counters: q.ctr}
	for _, e := range q.inflight {
		st.InFlight = append(st.InFlight, Flight{
			At:   int64(e.At),
			Seq:  e.Seq,
			To:   e.Del.To,
			From: e.Del.Msg.From,
			Kind: int(e.Del.Msg.Kind),
			Svc:  e.Del.Msg.Service,
			Slot: int64(e.Del.Msg.Slot),
			RSSI: float64(e.Del.Msg.RSSI),
			Code: int(e.Del.Msg.Codec),
		})
	}
	sort.Slice(st.InFlight, func(i, j int) bool {
		if st.InFlight[i].At != st.InFlight[j].At {
			return st.InFlight[i].At < st.InFlight[j].At
		}
		return st.InFlight[i].Seq < st.InFlight[j].Seq
	})
	for k, s := range q.last {
		st.Accepted = append(st.Accepted, LinkSlot{From: k.From, To: k.To, Slot: int64(s)})
	}
	sort.Slice(st.Accepted, func(i, j int) bool {
		if st.Accepted[i].From != st.Accepted[j].From {
			return st.Accepted[i].From < st.Accepted[j].From
		}
		return st.Accepted[i].To < st.Accepted[j].To
	})
	return st
}

// Restore rebuilds the queue's dynamic state from a snapshot, replacing
// whatever it held. The plan and stream binding are construction-time and
// must match the snapshot's run configuration (the engine validates that
// separately via the config digest).
func (q *Queue) Restore(st *State) {
	q.inflight = q.inflight[:0]
	q.seq = 0
	q.ctr = Counters{}
	if q.last != nil {
		q.last = make(map[linkKey]units.Slot)
	}
	if st == nil {
		return
	}
	q.seq = st.Seq
	q.ctr = st.Counters
	for _, f := range st.InFlight {
		if len(q.inflight) == 0 || units.Slot(f.At) < q.minAt {
			q.minAt = units.Slot(f.At)
		}
		q.inflight = append(q.inflight, entry{
			At:  units.Slot(f.At),
			Seq: f.Seq,
			Del: rach.Delivery{To: f.To, Msg: rach.Message{
				From:    f.From,
				Codec:   rach.Codec(f.Code),
				Kind:    rach.Kind(f.Kind),
				Service: f.Svc,
				Slot:    units.Slot(f.Slot),
				RSSI:    units.DBm(f.RSSI),
			}},
		})
	}
	if q.last == nil && (len(st.Accepted) > 0 || len(st.InFlight) > 0) {
		q.last = make(map[linkKey]units.Slot)
	}
	for _, a := range st.Accepted {
		q.last[linkKey{From: a.From, To: a.To}] = units.Slot(a.Slot)
	}
}
