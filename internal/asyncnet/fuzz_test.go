package asyncnet

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rach"
	"repro/internal/units"
	"repro/internal/xrand"
)

// FuzzLoadNetPlan hammers the asynchrony-plan parser and the queue built
// from whatever survives validation. Invariants: Read never panics; a
// validated plan has a finite, non-negative, capped delay bound and rates
// inside [0,1] (NaN/Inf never leak through); schema skew is rejected; and a
// queue driven by a validated plan never delivers more than it was fed plus
// its duplication count, never delivers before the send slot, and drains
// completely once the delay bound has elapsed.
func FuzzLoadNetPlan(f *testing.F) {
	seeds := []string{
		`{"version":1}`,
		`{"version":1,"max_delay_slots":25}`,
		`{"version":1,"max_delay_slots":25,"reorder":true,"dup_rate":0.01}`,
		`{"version":1,"max_delay_slots":50,"reorder":true,"dup_rate":0.01,"loss_rate":0.02}`,
		`{"version":1,"max_delay_slots":-1}`,
		`{"version":1,"max_delay_slots":1048577}`,
		`{"version":1,"dup_rate":1e308}`,
		`{"version":1,"loss_rate":-0.5}`,
		`{"version":2,"max_delay_slots":5}`,
		`{"version":1,"max_delay":5}`,
		`{"version":1} trailing`,
		`not json`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := p.Validate(); err != nil {
			return
		}
		if p.Version != PlanSchema {
			t.Fatalf("schema skew %d survived validation", p.Version)
		}
		if p.MaxDelaySlots < 0 || p.MaxDelaySlots > MaxDelayCap {
			t.Fatalf("unbounded delay %d survived validation", p.MaxDelaySlots)
		}
		for _, r := range []float64{p.DupRate, p.LossRate} {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > 1 {
				t.Fatalf("rate %v survived validation", r)
			}
		}

		q := NewQueue(p, xrand.NewStream(1))
		const slots = 8
		var in, out uint64
		for slot := units.Slot(1); slot <= slots; slot++ {
			dels := []rach.Delivery{
				{To: 1, Msg: rach.Message{From: 0, Slot: slot}},
				{To: 0, Msg: rach.Message{From: 1, Slot: slot}},
			}
			in += uint64(len(dels))
			for _, d := range q.Cycle(dels, slot) {
				if d.Msg.Slot > slot {
					t.Fatalf("delivery from the future: sent %d, drained at %d", d.Msg.Slot, slot)
				}
				out++
			}
		}
		// Cap the drain horizon: MaxDelayCap-sized bounds are valid but not
		// steppable slot by slot; one drain past the bound must flush.
		flush := units.Slot(slots + p.MaxDelaySlots + 1)
		out += uint64(len(q.Cycle(nil, flush)))
		if q.InFlight() != 0 {
			t.Fatalf("%d messages in flight past the delay bound", q.InFlight())
		}
		c := q.Counters()
		if out+c.Lost+c.Rejected != in+c.Duplicated {
			t.Fatalf("conservation: out=%d lost=%d rejected=%d != in=%d dup=%d",
				out, c.Lost, c.Rejected, in, c.Duplicated)
		}
	})
}
