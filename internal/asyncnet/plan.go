// Package asyncnet is the deterministic bounded-asynchrony message runtime:
// a transport layer interposed between the engines' broadcast resolution and
// protocol delivery. Every resolved delivery is enqueued with a delivery
// slot drawn from a seeded, bounded delay distribution on a dedicated xrand
// stream, with optional reordering, duplication and per-message loss;
// deliveries drain at slot boundaries through the existing phase pipeline.
//
// Determinism contract: all adversary draws happen on one dedicated stream,
// consumed in delivery-list order during the sequential enqueue step — never
// inside the parallel sender-evaluation phase — so a run with an adversary
// plan is bit-identical across slot/event engines, shard layouts and worker
// counts. Drained deliveries are handed back sorted by (receiver, enqueue
// sequence), which under capture-mode resolution (receiver-ascending output,
// required whenever a plan is configured) makes the degenerate plan — zero
// delay, no duplication, no loss — a literal pass-through: the engine sees
// the exact slice the resolver produced, bit-identical to running without
// the layer at all.
package asyncnet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// PlanSchema versions the asynchrony-plan JSON layout; Validate rejects
// plans written by a different schema.
const PlanSchema = 1

// MaxDelayCap bounds MaxDelaySlots at the loader: the adversary is a
// *bounded*-asynchrony model, and a delay rivaling a whole run is a typo,
// not a configuration. Engine-level validation tightens this further
// (the delay must stay below one firing period).
const MaxDelayCap = 1 << 20

// Plan configures the message adversary of one run.
type Plan struct {
	// Version must equal PlanSchema.
	Version int `json:"version"`
	// MaxDelaySlots is the inclusive upper bound on per-message delivery
	// delay, in slots. 0 keeps every message in its send slot.
	MaxDelaySlots int `json:"max_delay_slots"`
	// Reorder draws each message's delay uniformly from
	// [0, MaxDelaySlots]; when false every message is delayed by exactly
	// MaxDelaySlots (a pure latency shift that preserves send order).
	Reorder bool `json:"reorder,omitempty"`
	// DupRate is the probability a message is duplicated once, the copy
	// delayed independently (0 disables the draw).
	DupRate float64 `json:"dup_rate,omitempty"`
	// LossRate is the independent per-message transport-loss probability
	// (0 disables the draw). This is adversary loss at the message layer,
	// on top of any fault-plan channel loss.
	LossRate float64 `json:"loss_rate,omitempty"`
}

// Read decodes a plan from r, rejecting unknown fields so typos in
// hand-written plans fail loud instead of silently doing nothing.
func Read(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("asyncnet: parse plan: %w", err)
	}
	// Trailing garbage after the plan object is a malformed file.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("asyncnet: trailing data after plan object")
	}
	return &p, nil
}

// Load reads and decodes a plan file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("asyncnet: %s: %w", path, err)
	}
	return p, nil
}

// Validate checks the plan's internal consistency: schema version, a
// finite non-negative bounded delay, and rates inside [0,1].
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.Version != PlanSchema {
		return fmt.Errorf("asyncnet: plan schema %d, want %d", p.Version, PlanSchema)
	}
	if p.MaxDelaySlots < 0 {
		return fmt.Errorf("asyncnet: negative max_delay_slots %d", p.MaxDelaySlots)
	}
	if p.MaxDelaySlots > MaxDelayCap {
		return fmt.Errorf("asyncnet: max_delay_slots %d exceeds cap %d (delay must be bounded)", p.MaxDelaySlots, MaxDelayCap)
	}
	if err := checkRate("dup_rate", p.DupRate); err != nil {
		return err
	}
	if err := checkRate("loss_rate", p.LossRate); err != nil {
		return err
	}
	return nil
}

func checkRate(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return fmt.Errorf("asyncnet: %s %v outside [0,1]", name, v)
	}
	return nil
}

// Degenerate reports whether the plan (possibly nil) perturbs nothing:
// no delay, no duplication, no loss. A degenerate plan consumes zero
// random draws and delivers every message in its send slot, untouched.
func (p *Plan) Degenerate() bool {
	return p == nil || (p.MaxDelaySlots == 0 && p.DupRate == 0 && p.LossRate == 0)
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	if p.Degenerate() {
		return "asyncnet: degenerate (lockstep)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "asyncnet: max delay %d slots", p.MaxDelaySlots)
	if p.Reorder {
		b.WriteString(", reorder")
	}
	if p.DupRate > 0 {
		fmt.Fprintf(&b, ", dup %.4g", p.DupRate)
	}
	if p.LossRate > 0 {
		fmt.Fprintf(&b, ", loss %.4g", p.LossRate)
	}
	return b.String()
}
