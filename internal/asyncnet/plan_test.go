package asyncnet

import (
	"math"
	"strings"
	"testing"
)

func TestValidateTable(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"nil", nil, true},
		{"degenerate", &Plan{Version: PlanSchema}, true},
		{"full", &Plan{Version: PlanSchema, MaxDelaySlots: 25, Reorder: true, DupRate: 0.01, LossRate: 0.02}, true},
		{"wrong schema", &Plan{Version: PlanSchema + 1}, false},
		{"zero schema", &Plan{}, false},
		{"negative delay", &Plan{Version: PlanSchema, MaxDelaySlots: -1}, false},
		{"unbounded delay", &Plan{Version: PlanSchema, MaxDelaySlots: MaxDelayCap + 1}, false},
		{"cap delay", &Plan{Version: PlanSchema, MaxDelaySlots: MaxDelayCap}, true},
		{"dup nan", &Plan{Version: PlanSchema, DupRate: math.NaN()}, false},
		{"dup inf", &Plan{Version: PlanSchema, DupRate: math.Inf(1)}, false},
		{"dup negative", &Plan{Version: PlanSchema, DupRate: -0.1}, false},
		{"dup above one", &Plan{Version: PlanSchema, DupRate: 1.1}, false},
		{"loss nan", &Plan{Version: PlanSchema, LossRate: math.NaN()}, false},
		{"loss above one", &Plan{Version: PlanSchema, LossRate: 2}, false},
		{"rates at one", &Plan{Version: PlanSchema, DupRate: 1, LossRate: 1}, true},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"unknown field", `{"version":1,"max_delay":5}`},
		{"trailing garbage", `{"version":1} {"version":1}`},
		{"not json", `max_delay_slots: 5`},
		{"nan literal", `{"version":1,"dup_rate":NaN}`},
		{"array", `[1,2,3]`},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.in)
		}
	}
}

func TestReadRoundTrip(t *testing.T) {
	p, err := Read(strings.NewReader(`{"version":1,"max_delay_slots":25,"reorder":true,"dup_rate":0.01}`))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.MaxDelaySlots != 25 || !p.Reorder || p.DupRate != 0.01 || p.LossRate != 0 {
		t.Fatalf("decoded plan %+v", p)
	}
	if p.Degenerate() {
		t.Fatal("adversarial plan reported degenerate")
	}
}

func TestDegenerate(t *testing.T) {
	if !(*Plan)(nil).Degenerate() {
		t.Error("nil plan must be degenerate")
	}
	// Reorder alone perturbs nothing when the delay bound is zero.
	if !(&Plan{Version: PlanSchema, Reorder: true}).Degenerate() {
		t.Error("zero-delay reorder-only plan must be degenerate")
	}
	for _, p := range []*Plan{
		{Version: PlanSchema, MaxDelaySlots: 1},
		{Version: PlanSchema, DupRate: 0.5},
		{Version: PlanSchema, LossRate: 0.5},
	} {
		if p.Degenerate() {
			t.Errorf("plan %+v reported degenerate", p)
		}
	}
}

func TestString(t *testing.T) {
	if s := (*Plan)(nil).String(); !strings.Contains(s, "degenerate") {
		t.Errorf("nil plan String = %q", s)
	}
	p := &Plan{Version: PlanSchema, MaxDelaySlots: 25, Reorder: true, DupRate: 0.01}
	s := p.String()
	for _, want := range []string{"25", "reorder", "dup"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
