package manifest

import (
	"strings"
	"testing"
)

// FuzzRead: arbitrary bytes must never panic the manifest parser, and any
// manifest that parses and materializes must produce a valid Config.
func FuzzRead(f *testing.F) {
	var seed strings.Builder
	if err := Default(50, 1).Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"n":-5}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"n":10,"seed":1,"fading":"rayleigh","path_loss":"dual-slope"}`)

	f.Fuzz(func(t *testing.T, data string) {
		m, err := Read(strings.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic
		}
		cfg, err := m.ToConfig()
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("ToConfig returned an invalid config: %v", err)
		}
	})
}
