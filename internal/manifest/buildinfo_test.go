package manifest

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// Test binaries always embed build info, so the collector must at least
// report the toolchain version and module path.
func TestCollectBuildInfo(t *testing.T) {
	bi := CollectBuildInfo()
	if bi.GoVersion == "" {
		t.Error("no Go version collected")
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("implausible Go version %q", bi.GoVersion)
	}
	if bi.Module == "" {
		t.Error("no module path collected")
	}
	if strings.Contains(bi.Module, "(devel)") {
		t.Errorf("module %q leaked the (devel) placeholder", bi.Module)
	}
}

// Build identity is observability metadata, never run identity: two configs
// must digest identically whatever binary computed them, so the manifest's
// canonical JSON must not gain build fields.
func TestBuildInfoNotInManifestDigest(t *testing.T) {
	m := Default(50, 1)
	d1, err := m.Digest()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"go_version", "revision", "build", "vcs"} {
		if strings.Contains(string(canon), banned) {
			t.Errorf("digested manifest JSON contains build field %q", banned)
		}
	}
	d2, err := m.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("digest not stable")
	}
}

func TestBuildInfoString(t *testing.T) {
	bi := telemetry.BuildInfo{
		GoVersion: "go1.24.0",
		Module:    "repro",
		Revision:  "0123456789abcdef0123",
		Dirty:     true,
	}
	s := bi.String()
	for _, want := range []string{"repro", "0123456789ab", "+dirty", "go1.24.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q: revision not truncated to 12 chars", s)
	}
	if (telemetry.BuildInfo{}).String() == "" {
		t.Error("zero BuildInfo should still render something")
	}
}
