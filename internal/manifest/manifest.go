// Package manifest provides a serializable description of a simulation
// configuration — the reproducibility artifact: a JSON file that pins every
// parameter of a run, so an experiment can be re-executed bit-for-bit from
// the manifest alone (`d2dsim -config run.json`). core.Config itself holds
// interfaces and function hooks; Manifest is the flat, versioned view.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/oscillator"
	"repro/internal/radio"
	"repro/internal/units"
)

// Version guards against silently loading manifests written by an
// incompatible schema.
const Version = 1

// Manifest is the JSON-stable view of a run configuration.
type Manifest struct {
	Version int `json:"version"`

	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// AreaSide is the deployment square's side in metres; 0 scales the
	// paper's density (50 devices / 100 m side) with N.
	AreaSide float64 `json:"area_side_m"`

	TxPowerDBm    float64 `json:"tx_power_dbm"`
	ThresholdDBm  float64 `json:"threshold_dbm"`
	ShadowSigmaDB float64 `json:"shadow_sigma_db"`
	// Fading is one of "none", "rayleigh", "rician".
	Fading string `json:"fading"`
	// PathLoss is one of "dual-slope", "winner-b1", "log-distance-outdoor",
	// "log-distance-indoor".
	PathLoss string `json:"path_loss"`

	PeriodSlots int `json:"period_slots"`
	// CouplingA, CouplingEps are the eq. (5) parameters a and ε.
	CouplingA       float64 `json:"coupling_a"`
	CouplingEps     float64 `json:"coupling_eps"`
	SyncWindowSlots int64   `json:"sync_window_slots"`
	StableRounds    int     `json:"stable_rounds"`
	MaxSlots        int64   `json:"max_slots"`

	DiscoveryPeriods  int `json:"discovery_periods"`
	MergeEveryPeriods int `json:"merge_every_periods"`
	ConnectRetryLimit int `json:"connect_retry_limit"`
	FstRoundSlots     int `json:"fst_round_slots"`

	Services        int     `json:"services"`
	Preambles       int     `json:"preambles"`
	CaptureMarginDB float64 `json:"capture_margin_db"`
	ClockDriftPPM   float64 `json:"clock_drift_ppm"`
	SINRDetection   bool    `json:"sinr_detection"`
	MeshCoupling    bool    `json:"mesh_coupling"`
}

// Default returns the manifest equivalent of core.PaperConfig(n, seed).
func Default(n int, seed int64) Manifest {
	return Manifest{
		Version: Version,
		N:       n, Seed: seed, AreaSide: 0,
		TxPowerDBm: 23, ThresholdDBm: -95, ShadowSigmaDB: 10,
		Fading: "rayleigh", PathLoss: "dual-slope",
		PeriodSlots: 100, CouplingA: 3, CouplingEps: 0.02,
		SyncWindowSlots: 0, StableRounds: 3, MaxSlots: 400000,
		DiscoveryPeriods: 2, MergeEveryPeriods: 2,
		ConnectRetryLimit: 5, FstRoundSlots: 8,
		Services: 2, Preambles: 1, CaptureMarginDB: 6,
	}
}

// ToConfig materializes the manifest into a runnable core.Config.
func (m Manifest) ToConfig() (core.Config, error) {
	if m.Version != Version {
		return core.Config{}, fmt.Errorf("manifest: version %d, this build reads %d", m.Version, Version)
	}
	cfg := core.PaperConfig(m.N, m.Seed)
	if m.AreaSide > 0 {
		cfg.Area = geo.Square(m.AreaSide)
	}
	cfg.TxPower = units.DBm(m.TxPowerDBm)
	cfg.Threshold = units.DBm(m.ThresholdDBm)
	cfg.ShadowSigmaDB = m.ShadowSigmaDB

	switch m.Fading {
	case "none":
		cfg.Fading = radio.FadingNone
	case "rayleigh":
		cfg.Fading = radio.FadingRayleigh
	case "rician":
		cfg.Fading = radio.FadingRician
	default:
		return core.Config{}, fmt.Errorf("manifest: unknown fading %q", m.Fading)
	}
	switch m.PathLoss {
	case "dual-slope":
		cfg.PathLoss = radio.PaperDualSlope()
	case "winner-b1":
		cfg.PathLoss = radio.PaperWinnerB1()
	case "log-distance-outdoor":
		cfg.PathLoss = radio.OutdoorLogDistance()
	case "log-distance-indoor":
		cfg.PathLoss = radio.IndoorLogDistance()
	default:
		return core.Config{}, fmt.Errorf("manifest: unknown path loss %q", m.PathLoss)
	}

	cfg.PeriodSlots = m.PeriodSlots
	if m.CouplingA <= 0 || m.CouplingEps <= 0 {
		return core.Config{}, fmt.Errorf("manifest: coupling a=%v, eps=%v must be positive", m.CouplingA, m.CouplingEps)
	}
	cfg.Coupling = oscillator.NewCoupling(m.CouplingA, m.CouplingEps)
	cfg.SyncWindowSlots = m.SyncWindowSlots
	cfg.StableRounds = m.StableRounds
	cfg.MaxSlots = units.Slot(m.MaxSlots)
	cfg.DiscoveryPeriods = m.DiscoveryPeriods
	cfg.MergeEveryPeriods = m.MergeEveryPeriods
	cfg.ConnectRetryLimit = m.ConnectRetryLimit
	cfg.FstRoundSlots = m.FstRoundSlots
	cfg.Services = m.Services
	cfg.Preambles = m.Preambles
	cfg.CaptureMarginDB = m.CaptureMarginDB
	cfg.ClockDriftPPM = m.ClockDriftPPM
	cfg.SINRDetection = m.SINRDetection
	cfg.MeshCoupling = m.MeshCoupling

	if err := cfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("manifest: %w", err)
	}
	return cfg, nil
}

// Digest returns the SHA-256 hex digest of the manifest's compact JSON
// encoding — the stable identity of a run configuration. Telemetry reports
// carry it so a plotted series can be traced back to the exact parameters
// that produced it.
func (m Manifest) Digest() (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Write serializes the manifest as indented JSON.
func (m Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Read parses a manifest from JSON, rejecting unknown fields (typos in a
// reproducibility artifact must fail loudly, not silently default).
func Read(r io.Reader) (Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("manifest: %w", err)
	}
	return m, nil
}

// Load reads a manifest file.
func Load(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	return Read(f)
}

// Save writes a manifest file.
func (m Manifest) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
