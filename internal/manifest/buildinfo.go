package manifest

import (
	"runtime/debug"

	"repro/internal/telemetry"
)

// CollectBuildInfo reads the binary's embedded Go build metadata — module
// version, VCS revision/time/dirty — into the report's provenance block.
// The type lives in telemetry (the Report owns it; manifest imports core
// imports telemetry, so defining it here would cycle); the collector lives
// here because build identity is reproducibility metadata, the package's
// concern. Deliberately NOT a Manifest field: the manifest's canonical JSON
// is digested into the run's identity, and identical configs must digest
// identically across binaries.
//
// Binaries built outside a module or VCS checkout (plain `go run` of a
// file, stripped test binaries) yield partially empty info; callers treat
// zero fields as unknown.
func CollectBuildInfo() telemetry.BuildInfo {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return telemetry.BuildInfo{}
	}
	info := telemetry.BuildInfo{GoVersion: bi.GoVersion}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			info.Module += "@" + bi.Main.Version
		}
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.RevisionTime = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}
