package manifest

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDefaultMatchesPaperConfig(t *testing.T) {
	m := Default(50, 7)
	cfg, err := m.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	want := core.PaperConfig(50, 7)
	if cfg.TxPower != want.TxPower || cfg.Threshold != want.Threshold ||
		cfg.ShadowSigmaDB != want.ShadowSigmaDB || cfg.PeriodSlots != want.PeriodSlots ||
		cfg.Coupling != want.Coupling || cfg.MaxSlots != want.MaxSlots ||
		cfg.FstRoundSlots != want.FstRoundSlots || cfg.CaptureMarginDB != want.CaptureMarginDB {
		t.Errorf("default manifest diverges from PaperConfig:\n%+v\n%+v", cfg, want)
	}
	if cfg.Area != want.Area {
		t.Errorf("area %+v, want %+v", cfg.Area, want.Area)
	}
}

func TestRoundTripJSON(t *testing.T) {
	m := Default(100, 3)
	m.Fading = "rician"
	m.PathLoss = "winner-b1"
	m.AreaSide = 250
	m.ClockDriftPPM = 20
	m.SINRDetection = true

	var b strings.Builder
	if err := m.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip changed the manifest:\n%+v\n%+v", back, m)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	js := `{"version":1,"n":10,"seed":1,"totally_unknown_knob":5}`
	if _, err := Read(strings.NewReader(js)); err == nil {
		t.Error("unknown fields must be rejected")
	}
}

func TestToConfigValidation(t *testing.T) {
	cases := []func(*Manifest){
		func(m *Manifest) { m.Version = 99 },
		func(m *Manifest) { m.Fading = "quantum" },
		func(m *Manifest) { m.PathLoss = "vacuum" },
		func(m *Manifest) { m.CouplingA = 0 },
		func(m *Manifest) { m.CouplingEps = -1 },
		func(m *Manifest) { m.N = 0 },
		func(m *Manifest) { m.PeriodSlots = 1 },
	}
	for i, mutate := range cases {
		m := Default(20, 1)
		mutate(&m)
		if _, err := m.ToConfig(); err == nil {
			t.Errorf("case %d: invalid manifest accepted", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	m := Default(30, 9)
	m.MeshCoupling = true
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("file round trip changed the manifest")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestManifestDrivesIdenticalRun(t *testing.T) {
	// The reproducibility contract: a run from the manifest equals a run
	// from the equivalent in-code config.
	m := Default(25, 11)
	cfg, err := m.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSlots = 60000
	envA, err := core.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := core.PaperConfig(25, 11)
	direct.MaxSlots = 60000
	envB, err := core.NewEnv(direct)
	if err != nil {
		t.Fatal(err)
	}
	a := core.ST{}.Run(envA)
	b := core.ST{}.Run(envB)
	if a.ConvergenceSlots != b.ConvergenceSlots || a.Counters != b.Counters {
		t.Errorf("manifest-driven run differs:\n%v\n%v", a, b)
	}
}

func TestAllPathLossAndFadingVariantsLoad(t *testing.T) {
	for _, pl := range []string{"dual-slope", "winner-b1", "log-distance-outdoor", "log-distance-indoor"} {
		for _, fad := range []string{"none", "rayleigh", "rician"} {
			m := Default(10, 1)
			m.PathLoss = pl
			m.Fading = fad
			if _, err := m.ToConfig(); err != nil {
				t.Errorf("%s/%s: %v", pl, fad, err)
			}
		}
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	a := Default(40, 12345)
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("digest must be deterministic")
	}
	if len(d1) != 64 {
		t.Errorf("digest %q is not sha256 hex", d1)
	}
	b := Default(40, 12345)
	b.Seed = 54321
	d3, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("different configurations must digest differently")
	}
}
