package repro

// Public API. The implementation lives under internal/; this file re-exports
// the surface a downstream user needs: configure a scenario (Table I by
// default), deploy an environment, run a protocol, read the results. The
// experiment drivers and substrates stay internal — they are wired through
// the d2dsim/d2dtree/d2dtrace commands.

import (
	"repro/internal/core"
	"repro/internal/manifest"
)

// Config holds every knob of a simulation run. Build one with PaperConfig
// and override fields as needed; see the field documentation in the type.
type Config = core.Config

// Result is the outcome of one protocol run: convergence time in 1 ms
// slots (Fig. 3's metric), control-message counters (Fig. 4's metric), the
// built spanning tree, energy, and discovery coverage.
type Result = core.Result

// Env is one deployed simulation world (devices, channel, transport).
type Env = core.Env

// Protocol is a runnable proximity/synchronization protocol.
type Protocol = core.Protocol

// Manifest is the JSON-serializable form of a Config, for pinning runs to
// reproducibility artifacts (see d2dsim -config / -saveconfig).
type Manifest = manifest.Manifest

// PaperConfig returns the configuration of the paper's Table I for n
// devices at 50 devices per 100 m × 100 m, seeded with seed: 23 dBm
// transmit power, −95 dBm detection threshold, dual-slope path loss, 10 dB
// shadowing, UMi NLOS fast fading, 1 ms slots.
func PaperConfig(n int, seed int64) Config { return core.PaperConfig(n, seed) }

// DefaultManifest returns the manifest equivalent of PaperConfig(n, seed).
func DefaultManifest(n int, seed int64) Manifest { return manifest.Default(n, seed) }

// LoadManifest reads a run manifest from a JSON file.
func LoadManifest(path string) (Manifest, error) { return manifest.Load(path) }

// NewEnv deploys a simulation world from the configuration. Build a fresh
// Env per run: protocol runs consume the environment's stochastic state.
func NewEnv(cfg Config) (*Env, error) { return core.NewEnv(cfg) }

// ST returns the paper's proposed protocol: RSSI neighbour discovery,
// parallel heavy-edge fragment merging over RACH2 (Algorithms 1–2), firefly
// synchronization with O(log n) ordered ranking.
func ST() Protocol { return core.ST{} }

// FST returns the baseline protocol of Chao et al. [17] as the paper
// characterizes it: a sequentially grown firefly spanning tree on
// single-sample RSSI weights, one codec, O(n) brightness scans.
func FST() Protocol { return core.FST{} }

// BSAssisted returns the infrastructure-assisted reference: the eNB
// collects neighbour reports over slotted random access, computes the tree
// centrally, and distributes timing.
func BSAssisted() Protocol { return core.Centralized{} }

// Run is the one-call convenience: deploy cfg and run the protocol.
func Run(p Protocol, cfg Config) (Result, error) {
	env, err := core.NewEnv(cfg)
	if err != nil {
		return Result{}, err
	}
	return p.Run(env), nil
}
